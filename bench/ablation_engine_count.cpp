// Ablation: can more AES silicon close the bandwidth gap instead of SEAL?
//
//   ./ablation_engine_count [--tiles 480] [--input 224] [--jobs N]
//
// The paper argues (§II-B, Table I) that adding engines is ruinously costly
// in die area/power; this sweep quantifies what each extra engine per memory
// controller buys on a fully encrypted VGG-16, with the area/power bill.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "models/layer_spec.hpp"

namespace sealdl {
namespace {

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const auto tiles = static_cast<std::uint64_t>(flags.get_int("tiles", 480));
  const int input = static_cast<int>(flags.get_int("input", 224));

  bench::banner("Ablation — AES engines per memory controller (Direct, VGG-16)",
                "one engine per controller is the paper's cost-constrained "
                "design point; SEAL at 1 engine should rival several engines "
                "of full encryption");

  const auto specs = models::vgg16_specs(input);
  workload::RunOptions options;
  options.max_tiles_per_layer = tiles;
  options.jobs = bench::jobs_from_flags(flags);

  const double baseline =
      workload::run_network(specs, sim::GpuConfig::gtx480(), options).overall_ipc();

  util::Table table(
      {"engines/MC", "total area mm^2", "total power W", "IPC", "IPC/baseline"});
  const auto engine = crypto::default_engine();
  for (int engines = 1; engines <= 6; ++engines) {
    sim::GpuConfig config = sim::GpuConfig::gtx480();
    config.scheme = sim::EncryptionScheme::kDirect;
    config.engines_per_controller = engines;
    const auto result = workload::run_network(specs, config, options);
    table.add_row({std::to_string(engines),
                   util::Table::fmt(engine.area_mm2 * engines * config.num_channels, 1),
                   util::Table::fmt(engine.power_mw * engines * config.num_channels / 1000.0, 2),
                   util::Table::fmt(result.overall_ipc(), 1),
                   util::Table::fmt(result.overall_ipc() / baseline, 2)});
  }

  // SEAL reference row at the 1-engine budget.
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = sim::EncryptionScheme::kDirect;
  config.selective = true;
  workload::RunOptions seal = options;
  seal.selective = true;
  seal.plan = bench::default_plan();
  const auto result = workload::run_network(specs, config, seal);
  table.add_row({"SEAL-D (1)", util::Table::fmt(engine.area_mm2 * config.num_channels, 1),
                 util::Table::fmt(engine.power_mw * config.num_channels / 1000.0, 2),
                 util::Table::fmt(result.overall_ipc(), 1),
                 util::Table::fmt(result.overall_ipc() / baseline, 2)});
  table.print();

  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
