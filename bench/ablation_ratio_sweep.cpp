// Ablation: whole-network performance vs SEAL encryption ratio.
//
//   ./ablation_ratio_sweep [--tiles 480] [--input 224] [--model vgg16] [--jobs N]
//
// Shows where SEAL's win comes from: ratio 1.0 degenerates to full
// encryption, ratio 0 to (insecure) baseline-like bandwidth; the paper picks
// 0.5 from the Fig 3/4 security analysis.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "models/layer_spec.hpp"

namespace sealdl {
namespace {

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const auto tiles = static_cast<std::uint64_t>(flags.get_int("tiles", 480));
  const int input = static_cast<int>(flags.get_int("input", 224));
  const std::string model = flags.get("model", "vgg16");

  bench::banner("Ablation — encryption-ratio sweep (SEAL-D on " + model + ")",
                "performance interpolates between Baseline (ratio 0) and "
                "Direct full encryption (ratio 1); 0.5 is the security-chosen "
                "operating point");

  const auto specs = model == "vgg16"      ? models::vgg16_specs(input)
                     : model == "resnet18" ? models::resnet18_specs(input)
                                           : models::resnet34_specs(input);

  // Baseline and full-encryption anchors.
  workload::RunOptions options;
  options.max_tiles_per_layer = tiles;
  options.jobs = bench::jobs_from_flags(flags);
  sim::GpuConfig base_config = sim::GpuConfig::gtx480();
  const double baseline =
      workload::run_network(specs, base_config, options).overall_ipc();

  util::Table table({"ratio", "IPC", "IPC/baseline", "encrypted traffic"});
  for (double ratio : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    sim::GpuConfig config = sim::GpuConfig::gtx480();
    config.scheme = sim::EncryptionScheme::kDirect;
    config.selective = true;
    workload::RunOptions seal = options;
    seal.selective = true;
    seal.plan = bench::default_plan();
    seal.plan.encryption_ratio = ratio;
    const auto result = workload::run_network(specs, config, seal);
    std::uint64_t enc = 0, byp = 0;
    for (const auto& layer : result.layers) {
      enc += layer.stats.encrypted_bytes;
      byp += layer.stats.bypassed_bytes;
    }
    table.add_row({util::Table::pct(ratio, 0),
                   util::Table::fmt(result.overall_ipc(), 1),
                   util::Table::fmt(result.overall_ipc() / baseline, 2),
                   util::Table::pct(static_cast<double>(enc) /
                                    static_cast<double>(enc + byp + 1))});
  }
  table.print();

  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
