// Paper Figure 8: whole-inference latency normalized to Baseline.
//
//   ./fig8_latency [--tiles 480] [--ratio 0.5] [--input 224] [--jobs N]
#include <cstdio>

#include "bench/bench_common.hpp"
#include "models/layer_spec.hpp"

namespace sealdl {
namespace {

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const auto tiles = static_cast<std::uint64_t>(flags.get_int("tiles", 480));
  const double ratio = flags.get_double("ratio", 0.5);
  const int input = static_cast<int>(flags.get_int("input", 224));
  const int jobs = bench::jobs_from_flags(flags);

  bench::banner("Figure 8 — inference latency normalized to Baseline",
                "Direct/Counter increase latency by 39-60%; SEAL-D and SEAL-C "
                "reduce it by 28%/26% relative to them");

  const std::vector<std::pair<std::string, std::vector<models::LayerSpec>>> nets = {
      {"VGG-16", models::vgg16_specs(input)},
      {"ResNet-18", models::resnet18_specs(input)},
      {"ResNet-34", models::resnet34_specs(input)},
  };

  util::Table table({"scheme", "VGG-16", "ResNet-18", "ResNet-34", "ms @700MHz"});
  std::vector<double> baseline(nets.size(), 0.0);
  std::vector<std::vector<double>> normalized(bench::all_schemes().size());

  const auto schemes = bench::all_schemes();
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::vector<std::string> row{schemes[s].name};
    double total_ms = 0.0;
    for (std::size_t n = 0; n < nets.size(); ++n) {
      workload::RunOptions options;
      options.max_tiles_per_layer = tiles;
      bench::apply_scheme_options(schemes[s], options);
      options.plan = bench::default_plan();
      options.plan.encryption_ratio = ratio;
      options.jobs = jobs;
      const auto result = workload::run_network(
          nets[n].second, bench::configure(schemes[s]), options);
      const double cycles = result.total_cycles();
      if (schemes[s].scheme == sim::EncryptionScheme::kNone) baseline[n] = cycles;
      normalized[s].push_back(cycles / baseline[n]);
      row.push_back(util::Table::fmt(cycles / baseline[n], 2));
      total_ms += cycles / 700e6 * 1e3;
    }
    row.push_back(util::Table::fmt(total_ms, 1));
    table.add_row(std::move(row));
  }
  table.print();

  const double direct = util::mean(normalized[1]);
  const double counter = util::mean(normalized[2]);
  const double seal_d = util::mean(normalized[3]);
  const double seal_c = util::mean(normalized[4]);
  std::printf("\nDirect latency overhead vs Baseline:  +%.0f%% (paper: +39-60%%)\n",
              (direct - 1.0) * 100.0);
  std::printf("Counter latency overhead vs Baseline: +%.0f%% (paper: +39-60%%)\n",
              (counter - 1.0) * 100.0);
  std::printf("SEAL-D reduces latency vs Direct by   %.0f%% (paper: 28%%)\n",
              (1.0 - seal_d / direct) * 100.0);
  std::printf("SEAL-C reduces latency vs Counter by  %.0f%% (paper: 26%%)\n",
              (1.0 - seal_c / counter) * 100.0);

  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
