// google-benchmark micro: functional AES-128 software throughput and the
// line-mode transforms. Not a paper figure — a sanity check that the
// functional path is fast enough for the attack integration tests and a
// reference point for the hardware-engine numbers in Table I.
#include <benchmark/benchmark.h>

#include "crypto/aes128.hpp"
#include "crypto/modes.hpp"
#include "sim/functional_memory.hpp"
#include "util/rng.hpp"

namespace sealdl {
namespace {

crypto::Key128 bench_key() {
  crypto::Key128 key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i * 7 + 3);
  return key;
}

void BM_AesEncryptBlock(benchmark::State& state) {
  crypto::Aes128 aes(bench_key());
  crypto::Block block{};
  for (auto _ : state) {
    aes.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void BM_DirectEncryptLine(benchmark::State& state) {
  crypto::Aes128 aes(bench_key());
  std::array<std::uint8_t, crypto::kLineBytes> line{};
  std::uint64_t addr = 0;
  for (auto _ : state) {
    crypto::direct_encrypt_line(aes, addr, line);
    addr += crypto::kLineBytes;
    benchmark::DoNotOptimize(line);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(crypto::kLineBytes));
}
BENCHMARK(BM_DirectEncryptLine);

void BM_CounterTransformLine(benchmark::State& state) {
  crypto::Aes128 aes(bench_key());
  std::array<std::uint8_t, crypto::kLineBytes> line{};
  std::uint64_t counter = 0;
  for (auto _ : state) {
    crypto::counter_transform_line(aes, 0x1000, ++counter, line);
    benchmark::DoNotOptimize(line);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(crypto::kLineBytes));
}
BENCHMARK(BM_CounterTransformLine);

void BM_FunctionalMemoryWriteRead(benchmark::State& state) {
  const auto scheme = static_cast<sim::EncryptionScheme>(state.range(0));
  sim::FunctionalMemory memory(scheme, false, nullptr, bench_key());
  std::vector<std::uint8_t> buffer(4096, 0xA5);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    memory.write(addr, buffer);
    memory.read(addr, buffer);
    addr = (addr + 4096) % (1 << 20);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_FunctionalMemoryWriteRead)
    ->Arg(static_cast<int>(sim::EncryptionScheme::kNone))
    ->Arg(static_cast<int>(sim::EncryptionScheme::kDirect))
    ->Arg(static_cast<int>(sim::EncryptionScheme::kCounter));

}  // namespace
}  // namespace sealdl

BENCHMARK_MAIN();
