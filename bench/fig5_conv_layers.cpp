// Paper Figure 5: normalized IPC of four typical VGG CONV layers
// (64/128/256/512 channels) under the five schemes.
//
//   ./fig5_conv_layers [--tiles 960] [--ratio 0.5] [--jobs N]
#include <cstdio>

#include "bench/bench_common.hpp"
#include "models/layer_spec.hpp"

namespace sealdl {
namespace {

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const auto tiles = static_cast<std::uint64_t>(flags.get_int("tiles", 960));
  const double ratio = flags.get_double("ratio", 0.5);
  const int jobs = bench::jobs_from_flags(flags);

  bench::banner("Figure 5 — per-CONV-layer IPC normalized to Baseline",
                "Direct/Counter reduce IPC by up to 40%; SEAL-D/SEAL-C improve "
                "over them by 39%/33% at the default 50% encryption ratio");

  const auto layers = models::fig5_conv_layers();
  util::Table table({"scheme", "CONV-1", "CONV-2", "CONV-3", "CONV-4", "mean"});

  auto collect = bench::telemetry_from_flags(flags);
  std::vector<double> baseline(layers.size(), 0.0);
  for (const auto& scheme : bench::five_schemes()) {
    std::vector<std::string> row{scheme.name};
    std::vector<double> normalized;
    for (std::size_t i = 0; i < layers.size(); ++i) {
      const std::size_t first = collect ? collect->layers().size() : 0;
      const auto result = bench::run_body_layer(layers[i], scheme, tiles, ratio,
                                                collect.get(), jobs);
      bench::tag_new_layers(collect.get(), first, scheme.name);
      if (scheme.scheme == sim::EncryptionScheme::kNone) baseline[i] = result.ipc();
      const double norm = result.ipc() / baseline[i];
      normalized.push_back(norm);
      row.push_back(util::Table::fmt(norm, 2));
    }
    row.push_back(util::Table::fmt(util::mean(normalized), 2));
    table.add_row(std::move(row));
  }
  table.print();

  bench::export_telemetry(flags, "fig5_conv_layers", sim::GpuConfig::gtx480(),
                          collect.get());
  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
