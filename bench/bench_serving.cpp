// Serving bench: batched inference latency/throughput under offered load x
// encryption scheme, emitted as BENCH_serving.json.
//
//   ./bench_serving [--tiles 240] [--ratio 0.5] [--duration 0.2]
//       [--batch 4] [--queue-depth 16] [--policy drop] [--jobs 1]
//       [--slo 250] [--capacity-duration 120] [--out BENCH_serving.json]
//
// The sweep holds the arrival schedule fixed per rate (same seed for every
// scheme) so latency differences are purely the encryption configuration's
// service-time cost. The SEAL sanity gate mirrors the paper's headline: at
// the 50% ratio, SEAL-D service time must land strictly between Baseline
// and Direct.
//
// The capacity sweep then pushes each scheme to its saturation knee on
// fleets of 1, 2 and 4 devices (least-loaded router): capacity is the
// largest integer offered rate the fleet sustains over a long horizon
// (--capacity-duration seconds of simulated time, thousands of requests)
// with p99 latency within the --slo and zero lost requests. A second gate
// requires SEAL-D capacity strictly between Direct and Baseline at every
// fleet size — the serving-level restatement of the same headline.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "serve/fleet.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace sealdl {
namespace {

/// One capacity probe: does the fleet sustain `rate` within the SLO without
/// losing requests? Deterministic — fixed seed, simulated time only.
struct Probe {
  bool sustained = false;
  serve::ServeReport report;
};

Probe probe_capacity(const serve::ServiceModel& model,
                     const serve::ServeOptions& base,
                     const serve::FleetOptions& fleet,
                     const sim::GpuConfig& config, double rate,
                     double duration_s, double slo_ms) {
  serve::ServeOptions options = base;
  options.rate_rps = rate;
  options.duration_s = duration_s;
  Probe probe;
  probe.report =
      serve::run_fleet(model, options, fleet, config, nullptr).totals;
  probe.sustained = probe.report.generated > 0 &&
                    probe.report.completed == probe.report.generated &&
                    probe.report.p99_ms <= slo_ms;
  return probe;
}

/// Largest integer req/s the fleet sustains (exponential bracket, then
/// bisection; ~15 deterministic probes). Returns the winning rate and its
/// report; rate 0 when even 1 req/s misses the SLO.
struct Capacity {
  double rate_rps = 0.0;
  serve::ServeReport report;
};

Capacity find_capacity(const serve::ServiceModel& model,
                       const serve::ServeOptions& base,
                       const serve::FleetOptions& fleet,
                       const sim::GpuConfig& config, double duration_s,
                       double slo_ms, double service_ms_b1) {
  const auto sustains = [&](double rate, Capacity* keep) {
    const Probe probe =
        probe_capacity(model, base, fleet, config, rate, duration_s, slo_ms);
    if (probe.sustained && keep) {
      keep->rate_rps = rate;
      keep->report = probe.report;
    }
    return probe.sustained;
  };
  Capacity best;
  if (!sustains(1.0, &best)) return best;
  // Bracket: start near the analytic single-inference bound and double
  // until the fleet buckles (batching can beat the bound, hence the loop).
  double lo = 1.0;
  double hi = std::max(
      2.0, std::ceil(static_cast<double>(fleet.devices) * 1000.0 / service_ms_b1));
  while (sustains(hi, &best)) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e6) return best;  // unbounded within any sane budget
  }
  if (lo < best.rate_rps) lo = best.rate_rps;
  while (hi - lo > 1.0) {
    const double mid = std::floor((lo + hi) / 2.0);
    if (sustains(mid, &best)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const auto tiles = static_cast<std::uint64_t>(flags.get_int("tiles", 240));
  const double ratio = flags.get_double("ratio", 0.5);
  const double duration = flags.get_double("duration", 0.2);
  const int max_batch = static_cast<int>(flags.get_int("batch", 4));
  const auto queue_depth =
      static_cast<std::size_t>(flags.get_int("queue-depth", 16));
  const std::string policy_name = flags.get("policy", "drop");
  const int jobs = bench::jobs_from_flags(flags);
  const double slo_ms = flags.get_double("slo", 250.0);
  const double capacity_duration = flags.get_double("capacity-duration", 120.0);
  const std::string out = flags.get("out", "BENCH_serving.json");

  bench::banner("Serving — offered load x scheme (VGG-16, open-loop Poisson)",
                "encryption inflates service time, so the same offered load "
                "drives higher latency percentiles and earlier overload; "
                "SEAL p=50% must land between Baseline and Direct");

  const std::vector<double> rates = {10.0, 40.0, 160.0};
  // All registered schemes: the paper's five (Baseline first, which the
  // seal/capacity gates below index by position) plus the rivals.
  const auto schemes = bench::all_schemes();

  serve::ServeOptions serve_options;
  serve_options.duration_s = duration;
  serve_options.queue_depth = queue_depth;
  serve_options.max_batch = max_batch;
  serve_options.policy = serve::parse_policy(policy_name);

  struct Cell {
    double rate;
    serve::ServeReport report;
  };
  struct CapacityCell {
    int devices;
    Capacity capacity;
  };
  struct Row {
    std::string scheme;
    double service_ms_b1;  ///< batch-1 inference latency in ms
    std::vector<Cell> cells;
    std::vector<CapacityCell> capacities;
  };
  std::vector<Row> rows;
  const std::vector<int> fleet_sizes = {1, 2, 4};

  util::Table table({"scheme", "rate req/s", "p50 ms", "p95 ms", "p99 ms",
                     "throughput", "drop rate", "mean batch"});
  for (const auto& scheme : schemes) {
    const sim::GpuConfig config = bench::configure(scheme);
    workload::RunOptions options;
    options.max_tiles_per_layer = tiles;
    bench::apply_scheme_options(scheme, options);
    options.plan = bench::default_plan();
    options.plan.encryption_ratio = ratio;

    const serve::ServiceModel model({serve::named_network("vgg16")}, config,
                                    options, max_batch, jobs, nullptr);
    Row row;
    row.scheme = scheme.name;
    row.service_ms_b1 =
        model.service_cycles(0, 1) / (config.core_mhz * 1e3);
    for (const double rate : rates) {
      serve::ServeOptions cell_options = serve_options;
      cell_options.rate_rps = rate;
      Cell cell{rate, serve::run_server(model, cell_options, config, nullptr)};
      table.add_row({scheme.name, util::Table::fmt(rate, 0),
                     util::Table::fmt(cell.report.p50_ms, 1),
                     util::Table::fmt(cell.report.p95_ms, 1),
                     util::Table::fmt(cell.report.p99_ms, 1),
                     util::Table::fmt(cell.report.throughput_rps, 1),
                     util::Table::pct(cell.report.drop_rate),
                     util::Table::fmt(cell.report.mean_batch, 2)});
      row.cells.push_back(std::move(cell));
    }
    // Saturation knee per fleet size: the profiled model is reused, so the
    // whole capacity search costs event-loop time only.
    for (const int devices : fleet_sizes) {
      serve::FleetOptions fleet;
      fleet.devices = devices;
      fleet.router = serve::RouterPolicy::kLeastLoaded;
      CapacityCell cell{devices,
                        find_capacity(model, serve_options, fleet, config,
                                      capacity_duration, slo_ms,
                                      row.service_ms_b1)};
      row.capacities.push_back(std::move(cell));
    }
    rows.push_back(std::move(row));
  }
  table.print();

  std::printf("\ncapacity: max sustained req/s at p99 <= %.0f ms with zero "
              "loss over %.0f s simulated (least-loaded router)\n",
              slo_ms, capacity_duration);
  util::Table capacity_table(
      {"scheme", "devices", "capacity req/s", "p99 ms", "completed"});
  for (const Row& row : rows) {
    for (const CapacityCell& cell : row.capacities) {
      capacity_table.add_row(
          {row.scheme, std::to_string(cell.devices),
           util::Table::fmt(cell.capacity.rate_rps, 0),
           util::Table::fmt(cell.capacity.report.p99_ms, 1),
           std::to_string(cell.capacity.report.completed)});
    }
  }
  capacity_table.print();

  // SEAL sanity gate (acceptance criterion): the 50%-ratio SEAL-D service
  // time must land strictly between Baseline and full Direct.
  const double base_ms = rows[0].service_ms_b1;    // Baseline
  const double direct_ms = rows[1].service_ms_b1;  // Direct
  const double seal_ms = rows[3].service_ms_b1;    // SEAL-D
  std::printf("\nbatch-1 service: baseline %.2f ms, seal-d %.2f ms, direct %.2f ms\n",
              base_ms, seal_ms, direct_ms);
  if (!(base_ms < seal_ms && seal_ms < direct_ms)) {
    std::fprintf(stderr,
                 "error: SEAL-D service time not between Baseline and Direct\n");
    return 1;
  }

  // Capacity gate: slower service must buy strictly less capacity at every
  // fleet size — Direct < SEAL-D < Baseline in sustained req/s.
  bool capacity_ordered = true;
  for (std::size_t i = 0; i < fleet_sizes.size(); ++i) {
    const double base_cap = rows[0].capacities[i].capacity.rate_rps;
    const double direct_cap = rows[1].capacities[i].capacity.rate_rps;
    const double seal_cap = rows[3].capacities[i].capacity.rate_rps;
    std::printf("capacity at %d device(s): baseline %.0f, seal-d %.0f, "
                "direct %.0f req/s\n",
                fleet_sizes[i], base_cap, seal_cap, direct_cap);
    if (!(direct_cap < seal_cap && seal_cap < base_cap)) {
      capacity_ordered = false;
    }
  }
  if (!capacity_ordered) {
    std::fprintf(stderr, "error: SEAL-D capacity not strictly between Direct "
                         "and Baseline at every fleet size\n");
    return 1;
  }

  util::JsonWriter json;
  json.begin_object();
  json.field("bench", "bench_serving");
  json.field("workload", "vgg16 serving, open-loop poisson");
  json.field("tiles", static_cast<std::uint64_t>(tiles));
  json.field("ratio", ratio);
  json.field("duration_s", duration);
  json.field("queue_depth", static_cast<std::uint64_t>(queue_depth));
  json.field("max_batch", max_batch);
  json.field("policy", policy_name);
  bench::write_bench_provenance(json, bench::configure(schemes.front()), jobs,
                                bench::scheme_names(schemes));
  json.key("seal_check").begin_object();
  json.field("baseline_ms", base_ms);
  json.field("seal_d_ms", seal_ms);
  json.field("direct_ms", direct_ms);
  json.field("between", base_ms < seal_ms && seal_ms < direct_ms);
  json.end_object();
  json.key("capacity").begin_object();
  json.field("slo_p99_ms", slo_ms);
  json.field("duration_s", capacity_duration);
  json.field("router", "least-loaded");
  json.field("ordered", capacity_ordered);
  json.end_object();
  json.key("schemes").begin_array();
  for (const Row& row : rows) {
    json.begin_object();
    json.field("scheme", row.scheme);
    json.field("service_ms_b1", row.service_ms_b1);
    json.key("cells").begin_array();
    for (const Cell& cell : row.cells) {
      json.begin_object();
      json.field("rate_rps", cell.rate);
      json.field("generated", cell.report.generated);
      json.field("completed", cell.report.completed);
      json.field("dropped", cell.report.dropped);
      json.field("shed", cell.report.shed);
      json.field("batches", cell.report.batches);
      json.field("mean_batch", cell.report.mean_batch);
      json.field("p50_ms", cell.report.p50_ms);
      json.field("p95_ms", cell.report.p95_ms);
      json.field("p99_ms", cell.report.p99_ms);
      json.field("throughput_rps", cell.report.throughput_rps);
      json.field("drop_rate", cell.report.drop_rate);
      json.end_object();
    }
    json.end_array();
    json.key("capacity").begin_array();
    for (const CapacityCell& cell : row.capacities) {
      json.begin_object();
      json.field("devices", cell.devices);
      json.field("capacity_rps", cell.capacity.rate_rps);
      json.field("p99_ms", cell.capacity.report.p99_ms);
      json.field("completed", cell.capacity.report.completed);
      json.field("mean_batch", cell.capacity.report.mean_batch);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  telemetry::write_text_file(out, json.str());
  std::printf("wrote %s\n", out.c_str());

  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
