// Parallel-scaling bench: wall-clock time of the fig7 full-network workload
// (VGG-16 / ResNet-18 / ResNet-34 under the five schemes) at 1/2/4/8 layer
// jobs, emitted as BENCH_parallel.json to seed the perf trajectory.
//
//   ./bench_parallel_scaling [--tiles 480] [--ratio 0.5] [--input 224]
//       [--chunk 0] [--no-fast-path] [--out BENCH_parallel.json]
//
// Every jobs level simulates the identical workload (the runner is
// bitwise-deterministic across jobs — see tests/test_parallel_determinism),
// so the per-level cycle checksum doubles as a correctness gate here.
// --chunk N additionally splits each layer into tile-chunk waves of <= N
// tiles (more schedulable units per network); --no-fast-path times the naive
// per-cycle reference loop instead of the event-skipping one. Both knobs are
// recorded in the artifact so trajectories only ever compare like with like.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_common.hpp"
#include "models/layer_spec.hpp"
#include "telemetry/report.hpp"
#include "util/json.hpp"

namespace sealdl {
namespace {

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const auto tiles = static_cast<std::uint64_t>(flags.get_int("tiles", 480));
  const double ratio = flags.get_double("ratio", 0.5);
  const int input = static_cast<int>(flags.get_int("input", 224));
  const auto chunk = static_cast<std::uint64_t>(flags.get_int("chunk", 0));
  const bool fast_path = !flags.get_bool("no-fast-path", false);
  const std::string out = flags.get("out", "BENCH_parallel.json");

  bench::banner("Parallel scaling — fig7 workload wall time vs --jobs",
                "layer-level parallelism should cut full-sweep turnaround "
                "roughly linearly until layer count or host cores saturate");

  const std::vector<std::pair<std::string, std::vector<models::LayerSpec>>> nets = {
      {"VGG-16", models::vgg16_specs(input)},
      {"ResNet-18", models::resnet18_specs(input)},
      {"ResNet-34", models::resnet34_specs(input)},
  };
  const auto schemes = bench::five_schemes();

  // One fig7 sweep: every scheme over every network.
  const auto sweep = [&](int jobs) {
    double cycle_checksum = 0.0;
    for (const auto& scheme : schemes) {
      for (const auto& net : nets) {
        workload::RunOptions options;
        options.max_tiles_per_layer = tiles;
        options.selective = scheme.selective;
        options.plan = bench::default_plan();
        options.plan.encryption_ratio = ratio;
        options.jobs = jobs;
        options.chunk_tiles = chunk;
        options.fast_path = fast_path;
        cycle_checksum +=
            workload::run_network(net.second, bench::configure(scheme), options)
                .total_cycles();
      }
    }
    return cycle_checksum;
  };

  struct Point {
    int jobs;
    double wall_ms;
    double checksum;
  };
  std::vector<Point> points;
  util::Table table({"jobs", "wall s", "speedup vs serial"});
  double serial_ms = 0.0;
  for (const int jobs : {1, 2, 4, 8}) {
    const auto begin = std::chrono::steady_clock::now();
    const double checksum = sweep(jobs);
    const auto end = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(end - begin).count();
    if (jobs == 1) serial_ms = wall_ms;
    points.push_back({jobs, wall_ms, checksum});
    table.add_row({std::to_string(jobs), util::Table::fmt(wall_ms / 1e3, 2),
                   util::Table::fmt(serial_ms / wall_ms, 2) + "x"});
    // Same workload at every level, or the timing comparison is meaningless.
    if (checksum != points.front().checksum) {
      std::fprintf(stderr, "error: cycle checksum diverged at jobs=%d\n", jobs);
      return 1;
    }
  }
  table.print();

  const unsigned hw = std::thread::hardware_concurrency();
  util::JsonWriter json;
  json.begin_object();
  json.field("bench", "bench_parallel_scaling");
  json.field("workload", "fig7: vgg16+resnet18+resnet34 x 5 schemes");
  json.field("input", input);
  json.field("tiles", static_cast<std::uint64_t>(tiles));
  json.field("ratio", ratio);
  json.field("chunk", chunk);
  json.field("fast_path", fast_path);
  // Speedups only mean anything relative to the cores the host exposed.
  json.field("host_cores", static_cast<std::uint64_t>(hw ? hw : 1));
  // jobs=0 in the provenance block flags a sweep over several job counts.
  bench::write_bench_provenance(json, bench::configure(schemes.front()),
                                /*jobs=*/0, bench::five_scheme_names(),
                                fast_path);
  json.field("cycle_checksum", points.front().checksum);
  json.key("runs").begin_array();
  for (const auto& point : points) {
    json.begin_object();
    json.field("jobs", point.jobs);
    json.field("wall_ms", point.wall_ms);
    json.field("speedup_vs_serial", serial_ms / point.wall_ms);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  telemetry::write_text_file(out, json.str());
  std::printf("\nwrote %s\n", out.c_str());

  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
