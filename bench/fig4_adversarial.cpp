// Paper Figure 4: transferability of I-FGSM adversarial examples generated
// from white-box / black-box / SEAL substitute models against the victim.
//
//   ./fig4_adversarial [--quick] [--examples 150] [--models vgg16,...]
//
// Transferability = fraction of examples that fool the substitute AND
// mislead the victim (prediction != true label), the standard substitute-
// attack metric [4]. Paper: black-box ~0.2; SEAL at ratios >= 50% at or
// below black-box; below 40% the transferability rises sharply.
#include <cstdio>
#include <sstream>

#include "attack/ifgsm.hpp"
#include "attack/pipeline.hpp"
#include "bench/bench_common.hpp"

namespace sealdl {
namespace {

attack::PipelineOptions pipeline_options(const std::string& model) {
  attack::PipelineOptions o;
  o.model = model;
  o.build.input_hw = 16;
  o.build.width_div = 16;
  o.build.seed = 1 + std::hash<std::string>{}(model) % 1000;
  o.dataset.height = o.dataset.width = 16;
  o.dataset.samples = 2400;
  o.dataset.noise_stddev = 0.35f;
  o.test_holdout = 300;
  o.victim_train.epochs = 5;
  o.victim_train.sgd.lr = 0.02f;
  o.victim_train.lr_decay = 0.7f;
  o.substitute_train.epochs = 8;
  o.substitute_train.sgd.lr = 0.015f;
  o.substitute_train.lr_decay = 0.8f;
  o.augment.rounds = 2;
  // Fig 4 uses the paper's frozen-known-rows adversary: keeping the known
  // (plaintext) weights pinned preserves gradient alignment with the victim,
  // which is what makes low-ratio adversarial examples transfer. (Fig 3 uses
  // the init-only adversary, which maximizes *accuracy* instead.)
  o.freeze_known = true;
  return o;
}

std::vector<std::string> split_models(const std::string& arg) {
  std::vector<std::string> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const int examples = static_cast<int>(flags.get_int("examples", quick ? 60 : 100));
  const auto models =
      split_models(flags.get("models", quick ? "vgg16" : "vgg16,resnet18,resnet34"));
  const std::vector<double> ratios =
      quick ? std::vector<double>{0.9, 0.5, 0.2}
            : std::vector<double>{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1};

  bench::banner("Figure 4 — adversarial-example transferability vs ratio",
                "black-box ~0.2; SEAL >= 50% close to or below black-box; "
                "transferability rises rapidly below 40%");

  attack::IfgsmOptions ifgsm;
  ifgsm.max_iters = 15;
  // Generous L-inf ball: the width-scaled substitutes share less gradient
  // geometry with the victim than the paper's full-size models, so small-eps
  // examples transfer to nothing and the figure degenerates. --eps tunes it.
  ifgsm.epsilon = static_cast<float>(flags.get_double("eps", 1.0));
  ifgsm.alpha = ifgsm.epsilon / 10.0f;

  std::vector<std::string> header{"substitute"};
  for (const auto& m : models) header.push_back(m);
  header.push_back("average");
  util::Table table(header);

  std::vector<std::vector<double>> columns;
  for (const auto& model : models) {
    std::fprintf(stderr, "[fig4] training victim %s...\n", model.c_str());
    attack::SecurityPipeline pipe(pipeline_options(model));
    pipe.prepare();
    const nn::Tensor images = pipe.test_images(examples);
    const auto labels = pipe.test_labels(examples);

    auto measure = [&](nn::Layer& substitute) {
      const auto batch =
          attack::generate_ifgsm(substitute, images, labels, 10, ifgsm);
      return attack::evaluate_transfer(pipe.victim(), batch).transferability;
    };

    std::vector<double> col;
    auto wb = pipe.white_box();
    col.push_back(measure(*wb));
    std::fprintf(stderr, "[fig4] %s black-box...\n", model.c_str());
    auto bb = pipe.black_box();
    col.push_back(measure(*bb));
    for (double ratio : ratios) {
      auto sub = pipe.seal_substitute(ratio);
      col.push_back(measure(*sub));
      std::fprintf(stderr, "[fig4] %s ratio %.0f%% transfer %.3f\n", model.c_str(),
                   ratio * 100, col.back());
    }
    columns.push_back(std::move(col));
  }

  std::vector<std::string> row_names{"white-box", "black-box"};
  for (double ratio : ratios) {
    row_names.push_back("SEAL " + util::Table::pct(ratio, 0));
  }
  for (std::size_t r = 0; r < row_names.size(); ++r) {
    std::vector<std::string> row{row_names[r]};
    double sum = 0.0;
    for (const auto& col : columns) {
      row.push_back(util::Table::fmt(col[r], 2));
      sum += col[r];
    }
    row.push_back(util::Table::fmt(sum / static_cast<double>(columns.size()), 2));
    table.add_row(std::move(row));
  }
  table.print();

  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
