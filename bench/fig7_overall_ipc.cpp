// Paper Figure 7: overall IPC for full VGG-16 / ResNet-18 / ResNet-34
// inference under the five schemes, normalized to Baseline.
//
//   ./fig7_overall_ipc [--tiles 480] [--ratio 0.5] [--input 224] [--jobs N]
#include <cstdio>

#include "bench/bench_common.hpp"
#include "models/layer_spec.hpp"

namespace sealdl {
namespace {

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const auto tiles = static_cast<std::uint64_t>(flags.get_int("tiles", 480));
  const double ratio = flags.get_double("ratio", 0.5);
  const int input = static_cast<int>(flags.get_int("input", 224));
  const int jobs = bench::jobs_from_flags(flags);

  bench::banner("Figure 7 — overall IPC normalized to Baseline",
                "Direct/Counter reduce whole-inference IPC by 30-38%; SEAL-D "
                "and SEAL-C improve over them by 1.4x and 1.34x (plus the "
                "Seculator/GuardNN rivals for context)");

  const std::vector<std::pair<std::string, std::vector<models::LayerSpec>>> nets = {
      {"VGG-16", models::vgg16_specs(input)},
      {"ResNet-18", models::resnet18_specs(input)},
      {"ResNet-34", models::resnet34_specs(input)},
  };

  util::Table table({"scheme", "VGG-16", "ResNet-18", "ResNet-34"});
  std::vector<double> baseline(nets.size(), 0.0);
  std::vector<std::vector<double>> normalized(bench::all_schemes().size());

  auto collect = bench::telemetry_from_flags(flags);
  const auto schemes = bench::all_schemes();
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::vector<std::string> row{schemes[s].name};
    for (std::size_t n = 0; n < nets.size(); ++n) {
      workload::RunOptions options;
      options.max_tiles_per_layer = tiles;
      bench::apply_scheme_options(schemes[s], options);
      options.plan = bench::default_plan();
      options.plan.encryption_ratio = ratio;
      options.telemetry = collect.get();
      options.jobs = jobs;
      const std::size_t first = collect ? collect->layers().size() : 0;
      const auto result = workload::run_network(
          nets[n].second, bench::configure(schemes[s]), options);
      bench::tag_new_layers(collect.get(), first,
                            schemes[s].name + "/" + nets[n].first);
      if (schemes[s].scheme == sim::EncryptionScheme::kNone) {
        baseline[n] = result.overall_ipc();
      }
      const double norm = result.overall_ipc() / baseline[n];
      normalized[s].push_back(norm);
      row.push_back(util::Table::fmt(norm, 2));
    }
    table.add_row(std::move(row));
  }
  table.print();

  // The headline ratios of the paper's abstract.
  const double seal_d = util::mean(normalized[3]);
  const double direct = util::mean(normalized[1]);
  const double seal_c = util::mean(normalized[4]);
  const double counter = util::mean(normalized[2]);
  std::printf("\nSEAL-D / Direct  = %.2fx (paper: 1.40x)\n", seal_d / direct);
  std::printf("SEAL-C / Counter = %.2fx (paper: 1.34x)\n", seal_c / counter);

  bench::export_telemetry(flags, "fig7_overall_ipc", sim::GpuConfig::gtx480(),
                          collect.get());
  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
