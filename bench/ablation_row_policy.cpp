// Ablation: which rows should stay plaintext? Compares the paper's
// smallest-l1 policy against a random subset and the security-inverted
// largest-l1 policy, on both axes: substitute accuracy (security) and
// encrypted-traffic fraction (performance is policy-independent by volume).
//
//   ./ablation_row_policy [--quick]
#include <cstdio>

#include "attack/pipeline.hpp"
#include "attack/substitute.hpp"
#include "core/importance.hpp"
#include "bench/bench_common.hpp"

namespace sealdl {
namespace {

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);

  bench::banner("Ablation — row-selection policy at 50% ratio (vgg16)",
                "the SE scheme leaves the smallest-l1 rows plaintext; exposing "
                "the largest rows instead should hand the adversary a much "
                "better substitute");

  attack::PipelineOptions o;
  o.model = "vgg16";
  o.build.input_hw = 16;
  o.build.width_div = 16;
  o.dataset.height = o.dataset.width = 16;
  o.dataset.samples = 2400;
  o.dataset.noise_stddev = 0.35f;
  o.test_holdout = 300;
  o.victim_train.epochs = quick ? 3 : 5;
  o.victim_train.sgd.lr = 0.02f;
  o.victim_train.lr_decay = 0.7f;
  o.substitute_train.epochs = quick ? 4 : 8;
  o.substitute_train.sgd.lr = 0.015f;
  o.substitute_train.lr_decay = 0.8f;
  o.augment.rounds = 2;

  attack::SecurityPipeline pipe(o);
  pipe.prepare();
  std::printf("victim accuracy: %s\n\n",
              util::Table::pct(pipe.victim_test_accuracy()).c_str());

  const struct {
    const char* name;
    core::RowPolicy policy;
  } policies[] = {
      {"smallest-l1 plain (SEAL)", core::RowPolicy::kSmallestL1Plain},
      {"random plain", core::RowPolicy::kRandomPlain},
      {"largest-l1 plain (inverted)", core::RowPolicy::kLargestL1Plain},
  };

  util::Table table({"policy", "substitute accuracy", "exposed weight l1 share"});
  for (const auto& p : policies) {
    core::PlanOptions plan_options;
    plan_options.encryption_ratio = 0.5;
    plan_options.policy = p.policy;
    const auto plan = core::EncryptionPlan::from_model(pipe.victim(), plan_options);

    // l1 mass of the *exposed* (plaintext) weights relative to total.
    double exposed = 0.0, total = 0.0;
    const auto layers = core::collect_weight_layers(pipe.victim());
    for (std::size_t li = 0; li < layers.size(); ++li) {
      const auto norms = core::kernel_row_l1(layers[li]);
      for (int r = 0; r < layers[li].rows; ++r) {
        total += norms[static_cast<std::size_t>(r)];
        if (!plan.layer(li).row_encrypted(r)) {
          exposed += norms[static_cast<std::size_t>(r)];
        }
      }
    }

    auto sub = attack::make_seal_substitute(
        [&] { return models::build_model(o.model, o.build); }, pipe.victim(),
        plan, pipe.corpus(), o.substitute_train, o.freeze_known);
    table.add_row({p.name, util::Table::pct(pipe.test_accuracy(*sub)),
                   util::Table::pct(exposed / total)});
  }
  table.print();

  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
