// Paper Figure 3: inference accuracy of the adversary's substitute models
// (IP-stealing efficiency) vs SEAL encryption ratio, for white-box,
// black-box and SEAL substitutes on VGG-16 / ResNet-18 / ResNet-34.
//
//   ./fig3_ip_stealing [--quick] [--seeds 2] [--models vgg16,resnet18,resnet34]
//
// Scale note (see DESIGN.md): victims are width-scaled instances trained on
// the synthetic 10-class dataset with the paper's 90%/10% victim/adversary
// split and Jacobian-based augmentation.
#include <cstdio>
#include <sstream>

#include "attack/pipeline.hpp"
#include "bench/bench_common.hpp"

namespace sealdl {
namespace {

attack::PipelineOptions pipeline_options(const std::string& model) {
  attack::PipelineOptions o;
  o.model = model;
  o.build.input_hw = 16;
  o.build.width_div = 16;
  o.build.seed = 1 + std::hash<std::string>{}(model) % 1000;
  o.dataset.height = o.dataset.width = 16;
  o.dataset.samples = 2400;
  o.dataset.noise_stddev = 0.35f;
  o.test_holdout = 300;
  o.victim_train.epochs = 5;
  o.victim_train.sgd.lr = 0.02f;
  o.victim_train.lr_decay = 0.7f;
  o.substitute_train.epochs = 8;
  o.substitute_train.sgd.lr = 0.015f;
  o.substitute_train.lr_decay = 0.8f;
  o.augment.rounds = 2;
  return o;
}

std::vector<std::string> split_models(const std::string& arg) {
  std::vector<std::string> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  // Single seed by default to bound runtime; pass --seeds 2+ to average out
  // substitute-training variance (~±5 accuracy points at this scale).
  const int seeds = static_cast<int>(flags.get_int("seeds", 1));
  const auto models =
      split_models(flags.get("models", quick ? "vgg16" : "vgg16,resnet18,resnet34"));
  const std::vector<double> ratios =
      quick ? std::vector<double>{0.9, 0.5, 0.2}
            : std::vector<double>{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1};

  bench::banner("Figure 3 — substitute-model accuracy vs encryption ratio",
                "white-box ~94%, black-box ~75%; SEAL accuracy decreases with "
                "ratio and matches black-box for ratios >= 40%");

  std::vector<std::string> header{"substitute"};
  for (const auto& m : models) header.push_back(m);
  header.push_back("average");
  util::Table table(header);

  // Column-major collection: per model [wb, bb, ratio...].
  std::vector<std::vector<double>> columns;
  for (const auto& model : models) {
    std::fprintf(stderr, "[fig3] training victim %s...\n", model.c_str());
    attack::SecurityPipeline pipe(pipeline_options(model));
    pipe.prepare();
    std::vector<double> col;
    auto wb = pipe.white_box();
    col.push_back(pipe.test_accuracy(*wb));
    std::fprintf(stderr, "[fig3] %s black-box...\n", model.c_str());
    auto bb = pipe.black_box();
    col.push_back(pipe.test_accuracy(*bb));
    for (double ratio : ratios) {
      double acc = 0.0;
      for (int seed = 0; seed < seeds; ++seed) {
        core::EncryptionPlan plan;
        auto options = pipe.options();
        auto sub = attack::make_seal_substitute(
            [&] { return ::sealdl::models::build_model(options.model, options.build); },
            pipe.victim(),
            core::EncryptionPlan::from_model(pipe.victim(),
                                             [&] {
                                               core::PlanOptions po;
                                               po.encryption_ratio = ratio;
                                               return po;
                                             }()),
            pipe.corpus(), options.substitute_train, options.freeze_known,
            97 + static_cast<std::uint64_t>(seed) * 131);
        acc += pipe.test_accuracy(*sub);
      }
      col.push_back(acc / seeds);
      std::fprintf(stderr, "[fig3] %s ratio %.0f%% acc %.3f\n", model.c_str(),
                   ratio * 100, col.back());
    }
    columns.push_back(std::move(col));
  }

  std::vector<std::string> row_names{"white-box", "black-box"};
  for (double ratio : ratios) {
    row_names.push_back("SEAL " + util::Table::pct(ratio, 0));
  }
  for (std::size_t r = 0; r < row_names.size(); ++r) {
    std::vector<std::string> row{row_names[r]};
    double sum = 0.0;
    for (const auto& col : columns) {
      row.push_back(util::Table::pct(col[r]));
      sum += col[r];
    }
    row.push_back(util::Table::pct(sum / static_cast<double>(columns.size())));
    table.add_row(std::move(row));
  }
  table.print();

  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
