# ctest gate: `sealdl-check --inject all --json` and `sealdl-sim
# --inject-scheme all --inject-scheme-json` must account for every injection —
# exercised + skipped == total, nothing missed — so CI can prove no injection
# silently fell out of either self-test loop.
# Invoked as:
#   cmake -DCHECK_BIN=<path> -DSIM_BIN=<path> -DOUT_DIR=<dir> -P check_inject_ledger.cmake
if(NOT DEFINED CHECK_BIN OR NOT DEFINED SIM_BIN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCHECK_BIN=... -DSIM_BIN=... -DOUT_DIR=... -P check_inject_ledger.cmake")
endif()

# VGG-16 has no residual topology, so exactly the plan-residual injection is
# skipped — this pins both the skip path and its JSON accounting.
execute_process(
  COMMAND ${CHECK_BIN} --workload vgg16 --inject all
          --json ${OUT_DIR}/inject_ledger.json
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sealdl-check --inject all failed (rc=${rc})")
endif()

file(READ ${OUT_DIR}/inject_ledger.json ledger)
foreach(field total exercised skipped missed)
  if(NOT ledger MATCHES "\"${field}\":([0-9]+)")
    message(FATAL_ERROR "inject ledger JSON lacks the \"${field}\" field")
  endif()
  set(${field} ${CMAKE_MATCH_1})
endforeach()

math(EXPR accounted "${exercised} + ${skipped}")
if(NOT accounted EQUAL total)
  message(FATAL_ERROR "injection accounting broken: ${exercised} exercised + ${skipped} skipped != ${total} total")
endif()
if(NOT missed EQUAL 0)
  message(FATAL_ERROR "${missed} injection(s) missed")
endif()
if(NOT skipped EQUAL 1 OR NOT ledger MATCHES "\"name\":\"plan-residual\",\"status\":\"skipped\"")
  message(FATAL_ERROR "expected exactly plan-residual to be skipped on vgg16 (skipped=${skipped})")
endif()
message(STATUS "inject ledger OK: ${exercised} exercised + ${skipped} skipped == ${total} total, 0 missed")

# Same accounting for the scheme.* self-test loop. Baseline pins the skip
# path: with no must-cipher lines under scope none, exactly the wire and
# boundary corruptions have nothing to violate.
execute_process(
  COMMAND ${SIM_BIN} --workload resnet18 --input 64 --tiles 24
          --scheme baseline --inject-scheme all
          --inject-scheme-json ${OUT_DIR}/inject_scheme_ledger.json
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sealdl-sim --inject-scheme all failed (rc=${rc})")
endif()

file(READ ${OUT_DIR}/inject_scheme_ledger.json scheme_ledger)
foreach(field total exercised skipped missed)
  if(NOT scheme_ledger MATCHES "\"${field}\":([0-9]+)")
    message(FATAL_ERROR "inject-scheme ledger JSON lacks the \"${field}\" field")
  endif()
  set(${field} ${CMAKE_MATCH_1})
endforeach()

math(EXPR accounted "${exercised} + ${skipped}")
if(NOT accounted EQUAL total)
  message(FATAL_ERROR "scheme injection accounting broken: ${exercised} exercised + ${skipped} skipped != ${total} total")
endif()
if(NOT missed EQUAL 0)
  message(FATAL_ERROR "${missed} scheme injection(s) missed")
endif()
if(NOT skipped EQUAL 2
   OR NOT scheme_ledger MATCHES "\"name\":\"scheme-wire\",\"status\":\"skipped\""
   OR NOT scheme_ledger MATCHES "\"name\":\"scheme-boundary\",\"status\":\"skipped\"")
  message(FATAL_ERROR "expected exactly scheme-wire and scheme-boundary to be skipped on baseline (skipped=${skipped})")
endif()
message(STATUS "inject-scheme ledger OK: ${exercised} exercised + ${skipped} skipped == ${total} total, 0 missed")
