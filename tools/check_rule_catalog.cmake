# ctest gate: the rule catalog exported by `sealdl-check --list-rules --json`
# and the one documented in docs/ANALYSIS.md must not drift apart.
#
#   forward: every rule id in the machine-readable catalog appears in the
#            document;
#   reverse: every backticked dotted rule id in the document's tables is one
#            the binary knows.
#
# The catalog is consumed as JSON (string(JSON), cmake >= 3.19) rather than
# scraped from the human listing, so reformatting --list-rules output can
# never silently break the gate.
#
# Invoked as:
#   cmake -DCHECK_BIN=<path> -DDOC=<path/to/ANALYSIS.md> -DOUT_DIR=<dir>
#         -P check_rule_catalog.cmake
cmake_minimum_required(VERSION 3.19)
if(NOT DEFINED CHECK_BIN OR NOT DEFINED DOC OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCHECK_BIN=... -DDOC=... -DOUT_DIR=... -P check_rule_catalog.cmake")
endif()

execute_process(
  COMMAND ${CHECK_BIN} --list-rules --json ${OUT_DIR}/rule_catalog.json
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sealdl-check --list-rules --json failed (rc=${rc})")
endif()
file(READ ${OUT_DIR}/rule_catalog.json catalog)
file(READ ${DOC} doc)

string(JSON mode GET "${catalog}" mode)
if(NOT mode STREQUAL "rule-catalog")
  message(FATAL_ERROR "unexpected catalog mode \"${mode}\"")
endif()
string(JSON rule_count LENGTH "${catalog}" rules)
if(rule_count LESS 20)
  message(FATAL_ERROR "catalog JSON carries only ${rule_count} rule ids — export broke?")
endif()

set(listed_rules "")
math(EXPR last "${rule_count} - 1")
foreach(i RANGE ${last})
  string(JSON rule GET "${catalog}" rules ${i} id)
  list(APPEND listed_rules ${rule})
endforeach()
list(REMOVE_DUPLICATES listed_rules)

set(missing_in_doc "")
foreach(rule IN LISTS listed_rules)
  string(FIND "${doc}" "`${rule}`" pos)
  if(pos EQUAL -1)
    list(APPEND missing_in_doc ${rule})
  endif()
endforeach()
if(missing_in_doc)
  message(FATAL_ERROR "rules exported by --list-rules but undocumented in ${DOC}: ${missing_in_doc}")
endif()

# Reverse direction: backticked dotted ids in the document. Restrict to the
# known rule-family prefixes so prose mentioning e.g. `docs/ANALYSIS.md` or
# flag names never false-positives.
string(REGEX MATCHALL "`(plan|layout|trace|secure|scheme|lock|serve|profile|fleet)\\.[a-z0-9.-]+`"
       doc_rules "${doc}")
list(REMOVE_DUPLICATES doc_rules)
set(missing_in_binary "")
foreach(backticked IN LISTS doc_rules)
  string(REPLACE "`" "" rule "${backticked}")
  # The doc may name a family ("profile.*"); only exact ids are checked.
  if(rule MATCHES "\\*")
    continue()
  endif()
  list(FIND listed_rules "${rule}" idx)
  if(idx EQUAL -1)
    list(APPEND missing_in_binary ${rule})
  endif()
endforeach()
if(missing_in_binary)
  message(FATAL_ERROR "rules documented in ${DOC} but unknown to --list-rules: ${missing_in_binary}")
endif()

# Injection accounting: every exported injection must declare at least one
# rule it fires, and that rule must itself be in the catalog.
string(JSON inject_count LENGTH "${catalog}" injections)
math(EXPR last "${inject_count} - 1")
foreach(i RANGE ${last})
  string(JSON name GET "${catalog}" injections ${i} name)
  string(JSON fire_count LENGTH "${catalog}" injections ${i} fires)
  if(fire_count LESS 1)
    message(FATAL_ERROR "injection ${name} declares no rules it fires")
  endif()
  math(EXPR fire_last "${fire_count} - 1")
  foreach(j RANGE ${fire_last})
    string(JSON fired GET "${catalog}" injections ${i} fires ${j})
    list(FIND listed_rules "${fired}" idx)
    if(idx EQUAL -1)
      message(FATAL_ERROR "injection ${name} fires unknown rule ${fired}")
    endif()
  endforeach()
endforeach()

message(STATUS "rule catalog OK: ${rule_count} rules, ${inject_count} injections, binary and ${DOC} agree")
