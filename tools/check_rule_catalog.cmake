# ctest gate: the rule catalog printed by `sealdl-check --list-rules` and the
# one documented in docs/ANALYSIS.md must not drift apart.
#
#   forward: every rule id the binary prints appears in the document;
#   reverse: every backticked dotted rule id in the document's tables is one
#            the binary knows.
#
# Invoked as:
#   cmake -DCHECK_BIN=<path> -DDOC=<path/to/ANALYSIS.md> -P check_rule_catalog.cmake
if(NOT DEFINED CHECK_BIN OR NOT DEFINED DOC)
  message(FATAL_ERROR "usage: cmake -DCHECK_BIN=... -DDOC=... -P check_rule_catalog.cmake")
endif()

execute_process(
  COMMAND ${CHECK_BIN} --list-rules
  OUTPUT_VARIABLE listing
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sealdl-check --list-rules failed (rc=${rc})")
endif()
file(READ ${DOC} doc)

# Rule ids are the first token of each catalog line, before the injection
# section: lowercase dotted identifiers like plan.shape or serve.options.rate.
string(REGEX REPLACE "\ninjections.*" "" rule_section "${listing}")
string(REGEX MATCHALL "[a-z][a-z0-9-]*(\\.[a-z][a-z0-9-]*)+" listed_rules
       "${rule_section}")
list(REMOVE_DUPLICATES listed_rules)
list(LENGTH listed_rules listed_count)
if(listed_count LESS 20)
  message(FATAL_ERROR "--list-rules yielded only ${listed_count} rule ids — parse broke?")
endif()

set(missing_in_doc "")
foreach(rule IN LISTS listed_rules)
  string(FIND "${doc}" "`${rule}`" pos)
  if(pos EQUAL -1)
    list(APPEND missing_in_doc ${rule})
  endif()
endforeach()
if(missing_in_doc)
  message(FATAL_ERROR "rules printed by --list-rules but undocumented in ${DOC}: ${missing_in_doc}")
endif()

# Reverse direction: backticked dotted ids in the document. Restrict to the
# known rule-family prefixes so prose mentioning e.g. `docs/ANALYSIS.md` or
# flag names never false-positives.
string(REGEX MATCHALL "`(plan|layout|trace|secure|lock|serve|profile|fleet)\\.[a-z0-9.-]+`"
       doc_rules "${doc}")
list(REMOVE_DUPLICATES doc_rules)
set(missing_in_binary "")
foreach(backticked IN LISTS doc_rules)
  string(REPLACE "`" "" rule "${backticked}")
  # The doc may name a family ("profile.*"); only exact ids are checked.
  if(rule MATCHES "\\*")
    continue()
  endif()
  list(FIND listed_rules "${rule}" idx)
  if(idx EQUAL -1)
    list(APPEND missing_in_binary ${rule})
  endif()
endforeach()
if(missing_in_binary)
  message(FATAL_ERROR "rules documented in ${DOC} but unknown to --list-rules: ${missing_in_binary}")
endif()

message(STATUS "rule catalog OK: ${listed_count} rules, binary and ${DOC} agree")
