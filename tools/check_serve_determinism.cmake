# ctest gate: sealdl-serve must produce byte-identical JSON reports for
# --jobs 1 and --jobs 4 (profiling parallelism must not leak into results).
# Invoked as:
#   cmake -DSERVE_BIN=<path> -DOUT_DIR=<dir> -P check_serve_determinism.cmake
if(NOT DEFINED SERVE_BIN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DSERVE_BIN=... -DOUT_DIR=... -P check_serve_determinism.cmake")
endif()

set(common_flags
  --networks vgg16 --scheme seal-c --rate 30 --duration 0.05
  --queue-depth 8 --batch 4 --policy shed-oldest --tiles 48 --seed 7)

execute_process(
  COMMAND ${SERVE_BIN} ${common_flags} --jobs 1 --json ${OUT_DIR}/serve_j1.json
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "sealdl-serve --jobs 1 failed (rc=${rc1})")
endif()

execute_process(
  COMMAND ${SERVE_BIN} ${common_flags} --jobs 4 --json ${OUT_DIR}/serve_j4.json
  RESULT_VARIABLE rc4)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "sealdl-serve --jobs 4 failed (rc=${rc4})")
endif()

# The provenance block legitimately differs across job counts (it records
# --jobs); strip it before comparing. It is a flat object (no nested braces),
# emitted on the single-line report, so a non-greedy brace match is exact.
file(READ ${OUT_DIR}/serve_j1.json report_j1)
file(READ ${OUT_DIR}/serve_j4.json report_j4)
string(REGEX REPLACE "\"provenance\":{[^}]*}," "" report_j1 "${report_j1}")
string(REGEX REPLACE "\"provenance\":{[^}]*}," "" report_j4 "${report_j4}")
if(NOT report_j1 STREQUAL report_j4)
  message(FATAL_ERROR "serve reports differ between --jobs 1 and --jobs 4")
endif()
message(STATUS "serve determinism OK: --jobs 1 == --jobs 4")
