// sealdl-serve: batched inference serving simulation front end.
//
// Profiles the served network(s) once per scheme configuration, then replays
// a seeded open-loop arrival schedule against a bounded admission queue and
// a batching scheduler (see src/serve). Everything runs in simulated time,
// so a given flag set reproduces byte-identically — including across --jobs
// values, which only parallelize the profiling stage:
//
//   sealdl-serve --networks vgg16 --scheme seal-d --rate 20 --duration 2
//   sealdl-serve --networks vgg16,resnet18 --rate 50 --policy shed-oldest
//   sealdl-serve --rate 100 --queue-depth 16 --batch 8 --policy block --jobs 4
//
// Fleet serving (src/serve/fleet.hpp): --devices N simulates N accelerators
// behind a --router (round-robin | least-loaded | affinity);
// --shard-stages S > 1 splits the model into S-stage pipelines of S devices
// each (N must be a multiple of S) with --microbatch interleaving and a
// --link-latency/--link-bpc inter-device link cost. Per-device counters land
// in the registry (fleet/d<i>/*), batch spans render one Perfetto track per
// device, and the fleet.* reconciliation rules prove the per-device
// decomposition sums back to the fleet totals after every run.
//
// Telemetry sinks (see docs/OBSERVABILITY.md):
//   --json report.json        run report: profile layers + batch spans +
//                             serve/* counters and latency histograms
//   --trace serve.trace.json  Perfetto trace with one span per batch plus a
//                             causally-linked span chain per request
//   --live-stats 0.25         stream one NDJSON progress line to stdout per
//                             0.25 s of simulated time
//   --profile-out spans.ndjson
//                             per-request lifecycle stage decomposition,
//                             one NDJSON record per request
//
// --secure-audit attaches one byte-provenance taint probe per served network
// during the profiling stage and proves the secure.* no-leakage invariants
// over each recorded bus ledger before the server starts (docs/ANALYSIS.md,
// "Security analysis").
//
// Exit codes: 0 success, 1 runtime error, 2 invalid serving configuration —
// the config is statically validated up front (verify/serve_checkers.hpp,
// rule family serve.options.*) and violations print with their rule ids
// rather than asserting deep inside the scheduler.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/fleet.hpp"
#include "serve/server.hpp"
#include "sim/scheme_registry.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "verify/fleet_checkers.hpp"
#include "verify/profile_checkers.hpp"
#include "verify/secure_checkers.hpp"
#include "verify/serve_checkers.hpp"

using namespace sealdl;

namespace {

/// Resolves a CLI scheme name through the shared registry
/// (sim/scheme_registry.hpp) — the same table sealdl-sim and the benches use,
/// so the accepted set can never drift between the tools.
const sim::SchemeInfo& parse_scheme(const std::string& name) {
  if (const sim::SchemeInfo* entry = sim::find_scheme(name)) return *entry;
  std::string names;
  for (const sim::SchemeInfo& info : sim::scheme_registry()) {
    if (!names.empty()) names += '|';
    names += info.cli_name;
  }
  throw std::invalid_argument("unknown --scheme " + name + " (" + names + ")");
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t end = csv.find(',', begin);
    const std::string item =
        csv.substr(begin, end == std::string::npos ? std::string::npos : end - begin);
    if (!item.empty()) out.push_back(item);
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return out;
}

int run(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const std::string networks_csv = flags.get("networks", "vgg16");
  const std::string scheme_name = flags.get("scheme", "baseline");
  const sim::SchemeInfo& entry = parse_scheme(scheme_name);
  const double ratio = flags.get_double("ratio", 0.5);
  const auto tiles = static_cast<std::uint64_t>(flags.get_int("tiles", 480));
  const int jobs = static_cast<int>(flags.get_int("jobs", 1));

  serve::ServeOptions serve_options;
  serve_options.rate_rps = flags.get_double("rate", 20.0);
  serve_options.duration_s = flags.get_double("duration", 1.0);
  serve_options.queue_depth =
      static_cast<std::size_t>(flags.get_int("queue-depth", 32));
  serve_options.max_batch = static_cast<int>(flags.get_int("batch", 4));
  serve_options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  serve_options.dispatch_overhead_cycles =
      flags.get_double("dispatch-overhead", 20000.0);
  serve_options.live_stats = flags.has("live-stats");
  serve_options.live_stats_interval_s = flags.get_double("live-stats", 0.25);
  serve_options.profile = flags.has("profile-out");
  serve_options.profile_path = flags.get("profile-out", "");

  serve::FleetOptions fleet_options;
  fleet_options.devices = static_cast<int>(flags.get_int("devices", 1));
  fleet_options.shard_stages =
      static_cast<int>(flags.get_int("shard-stages", 1));
  fleet_options.microbatch = static_cast<int>(flags.get_int("microbatch", 2));
  fleet_options.link_latency_cycles =
      flags.get_double("link-latency", 2000.0);
  fleet_options.link_bytes_per_cycle = flags.get_double("link-bpc", 16.0);

  const std::string inject_fleet = flags.get("inject-fleet", "");
  if (!inject_fleet.empty() && inject_fleet != "requests" &&
      inject_fleet != "batches" && inject_fleet != "stages" &&
      inject_fleet != "devices") {
    throw std::invalid_argument("unknown --inject-fleet " + inject_fleet +
                                " (requests|batches|stages|devices)");
  }

  // Static config validation: collect every violation (including an
  // unparsable --policy or --router) into one report so the operator sees
  // the full list, then refuse with exit code 2 and the stable rule ids.
  verify::Report options_report;
  try {
    serve_options.policy = serve::parse_policy(flags.get("policy", "drop"));
  } catch (const std::invalid_argument& e) {
    verify::Diagnostic diagnostic;
    diagnostic.rule = "serve.options.policy";
    diagnostic.message = e.what();
    options_report.add(std::move(diagnostic));
  }
  try {
    fleet_options.router =
        serve::parse_router(flags.get("router", "round-robin"));
  } catch (const std::invalid_argument& e) {
    verify::Diagnostic diagnostic;
    diagnostic.rule = "fleet.options.router";
    diagnostic.message = e.what();
    options_report.add(std::move(diagnostic));
  }
  verify::check_serve_options(serve_options, jobs, options_report);
  verify::check_fleet_options(fleet_options, options_report);
  if (options_report.error_count() > 0) {
    std::fputs(options_report.to_text().c_str(), stderr);
    std::fprintf(stderr, "sealdl-serve: invalid serving configuration\n");
    return 2;
  }

  sim::GpuConfig config = sim::GpuConfig::gtx480();
  sim::apply_scheme(entry, config);

  const std::string json_path = flags.get("json", "");
  const std::string trace_path = flags.get("trace", "");
  const bool secure_audit = flags.get_bool("secure-audit", false);
  if (secure_audit && !entry.paper) {
    throw std::invalid_argument(
        std::string("--secure-audit hand-encodes the five paper schemes; "
                    "check ") +
        entry.cli_name + " with sealdl-sim --scheme-audit instead");
  }
  const auto sample_interval =
      static_cast<sim::Cycle>(flags.get_int("sample-interval", 0));
  std::unique_ptr<telemetry::RunTelemetry> collect;
  if (!json_path.empty() || !trace_path.empty() || serve_options.profile) {
    telemetry::TelemetryOptions topts;
    topts.sample_interval = sample_interval;
    collect = std::make_unique<telemetry::RunTelemetry>(topts);
  }
  for (const auto& unused : flags.unused()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", unused.c_str());
  }

  std::vector<serve::NamedNetwork> networks;
  for (const std::string& name : split_csv(networks_csv)) {
    networks.push_back(serve::named_network(name));
  }

  workload::RunOptions run_options;
  run_options.max_tiles_per_layer = tiles;
  run_options.selective = entry.selective();
  run_options.scope = entry.scope;
  run_options.plan.encryption_ratio = ratio;

  // One audit input + taint auditor per served network: each hook records its
  // own network's profiling run, so per-network ledgers stay jobs-invariant.
  std::vector<std::unique_ptr<verify::AnalysisInput>> audit_inputs;
  std::vector<std::unique_ptr<verify::TaintAuditor>> auditors;
  std::vector<workload::BusProbeHook*> probe_hooks;
  if (secure_audit) {
    for (const serve::NamedNetwork& network : networks) {
      verify::BuildOptions build;
      build.plan = run_options.plan;
      build.selective = entry.scope == sim::ProtectionScope::kPlanRows;
      audit_inputs.push_back(std::make_unique<verify::AnalysisInput>(
          verify::build_input(network.specs, build)));
      auditors.push_back(
          std::make_unique<verify::TaintAuditor>(audit_inputs.back().get()));
      probe_hooks.push_back(auditors.back().get());
    }
  }

  const serve::ServiceModel model(networks, config, run_options,
                                  serve_options.max_batch, jobs, collect.get(),
                                  probe_hooks);

  if (secure_audit) {
    bool audit_failed = false;
    for (int i = 0; i < model.count(); ++i) {
      std::uint64_t counter_bytes = 0;
      for (const workload::LayerResult& layer : model.profile(i).layers) {
        counter_bytes += layer.stats.counter_traffic_bytes;
      }
      const verify::Report audit_report =
          auditors[static_cast<std::size_t>(i)]->check(
              config.scheme, config.selective, counter_bytes);
      const verify::TaintLedger& ledger =
          auditors[static_cast<std::size_t>(i)]->ledger();
      std::printf("secure audit [%s]: %llu bus bytes over %zu lines, "
                  "digest %016llx, %llu error(s)\n",
                  model.name(i).c_str(),
                  static_cast<unsigned long long>(ledger.total_bytes()),
                  ledger.lines().size(),
                  static_cast<unsigned long long>(ledger.digest()),
                  static_cast<unsigned long long>(audit_report.error_count()));
      if (audit_report.error_count() > 0) {
        std::fputs(audit_report.to_text().c_str(), stderr);
        audit_failed = true;
      }
    }
    if (audit_failed) {
      std::fprintf(stderr, "sealdl-serve: profiling bus traffic violates the "
                           "secure.* invariants\n");
      return 1;
    }
  }
  // NDJSON progress lines go to stdout so they can be piped while the table
  // still prints at the end.
  serve::LiveStatsSink live_sink;
  if (serve_options.live_stats) {
    live_sink = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
    };
  }
  const serve::FleetReport fleet_report = serve::run_fleet(
      model, serve_options, fleet_options, config, collect.get(), live_sink);
  const serve::ServeReport& report = fleet_report.totals;

  if (!inject_fleet.empty()) {
    // Self-test: corrupt one field of a healthy fleet report, then demand
    // the matching fleet.* rule fires (same discipline as sealdl-sim
    // --inject-profile and sealdl-check --inject).
    serve::FleetReport corrupted = fleet_report;
    const char* rule = nullptr;
    if (inject_fleet == "requests") {
      corrupted.device_reports.front().completed += 1;
      rule = "fleet.requests";
    } else if (inject_fleet == "batches") {
      corrupted.device_reports.front().batches += 1;
      rule = "fleet.batches";
    } else if (inject_fleet == "stages") {
      corrupted.totals.stage_cycles_sum =
          corrupted.totals.stage_cycles_sum * 1.01 + 1.0;
      rule = "fleet.stages";
    } else {
      corrupted.device_reports.front().device += 1;
      rule = "fleet.devices";
    }
    const verify::Report check =
        verify::run_fleet_report_check(fleet_options, corrupted);
    if (check.fired(rule)) {
      std::printf("injected fleet violation caught (%s)\n", rule);
      return 0;
    }
    std::fprintf(stderr, "MISSED injected fleet violation (%s)\n", rule);
    return 1;
  }

  // Post-run reconciliation. fleet.* proves the per-device decomposition
  // sums back to the fleet totals; profile.serve.stages proves the
  // per-request lifecycle stages sum to the measured latency. A failure in
  // either is a scheduler accounting bug, not a configuration error.
  verify::Report stage_report;
  verify::check_serve_stage_totals(report.stage_cycles_sum,
                                   report.latency_cycles_sum, stage_report);
  verify::check_fleet_report(fleet_options, fleet_report, stage_report);
  if (stage_report.error_count() > 0) {
    std::fputs(stage_report.to_text().c_str(), stderr);
    std::fprintf(stderr, "sealdl-serve: fleet accounting does not reconcile\n");
    return 1;
  }

  std::printf("sealdl-serve: %s, scheme %s, %.1f req/s for %.2f s, queue %zu, "
              "batch <= %d, policy %s\n",
              networks_csv.c_str(), scheme_name.c_str(), serve_options.rate_rps,
              serve_options.duration_s, serve_options.queue_depth,
              serve_options.max_batch, serve::policy_name(serve_options.policy));
  if (fleet_options.devices > 1 || fleet_options.shard_stages > 1) {
    std::printf("fleet: %d device(s) as %d pipeline(s) x %d stage(s), "
                "router %s, microbatch %d\n",
                fleet_report.devices, fleet_report.pipelines,
                fleet_report.stages, serve::router_name(fleet_options.router),
                fleet_options.microbatch);
  }
  util::Table table({"metric", "value"});
  table.add_row({"generated", std::to_string(report.generated)});
  table.add_row({"completed", std::to_string(report.completed)});
  table.add_row({"dropped", std::to_string(report.dropped)});
  table.add_row({"shed", std::to_string(report.shed)});
  table.add_row({"blocked (backlogged)", std::to_string(report.blocked)});
  table.add_row({"batches", std::to_string(report.batches)});
  table.add_row({"mean batch", util::Table::fmt(report.mean_batch, 2)});
  table.add_row({"p50 latency", util::Table::fmt(report.p50_ms, 2) + " ms"});
  table.add_row({"p95 latency", util::Table::fmt(report.p95_ms, 2) + " ms"});
  table.add_row({"p99 latency", util::Table::fmt(report.p99_ms, 2) + " ms"});
  table.add_row({"mean queue wait", util::Table::fmt(report.mean_queue_ms, 2) + " ms"});
  table.add_row({"throughput", util::Table::fmt(report.throughput_rps, 2) + " req/s"});
  table.add_row({"drop rate", util::Table::pct(report.drop_rate)});
  table.print();

  // Per-stage latency decomposition of completed requests (lifecycle spans:
  // backlog -> queue -> dispatch -> execute).
  util::Table stages({"stage", "p50", "p95", "p99"});
  const auto stage_row = [&stages](const char* name,
                                   const serve::StageLatency& stage) {
    stages.add_row({name, util::Table::fmt(stage.p50_ms, 2) + " ms",
                    util::Table::fmt(stage.p95_ms, 2) + " ms",
                    util::Table::fmt(stage.p99_ms, 2) + " ms"});
  };
  stage_row("backlog", report.stage_backlog);
  stage_row("queue", report.stage_queue);
  stage_row("dispatch", report.stage_dispatch);
  stage_row("execute", report.stage_execute);
  std::printf("\nstage latency (completed requests)\n");
  stages.print();

  // Per-device decomposition: admission outcomes live on each pipeline's
  // stage-0 device; stage runs and busy time on every device.
  if (fleet_options.devices > 1 || fleet_options.shard_stages > 1) {
    util::Table devices({"device", "pipe/stage", "routed", "completed",
                         "dropped", "shed", "batches", "stage runs",
                         "busy", "util"});
    const double end = static_cast<double>(report.end_cycle);
    for (const serve::DeviceReport& dev : fleet_report.device_reports) {
      devices.add_row(
          {"d" + std::to_string(dev.device),
           "p" + std::to_string(dev.pipeline) + "/s" +
               std::to_string(dev.stage),
           std::to_string(dev.routed), std::to_string(dev.completed),
           std::to_string(dev.dropped), std::to_string(dev.shed),
           std::to_string(dev.batches), std::to_string(dev.stage_runs),
           util::Table::fmt(dev.busy_cycles / 1e6, 2) + " Mcyc",
           util::Table::pct(end > 0.0 ? dev.busy_cycles / end : 0.0)});
    }
    std::printf("\nper-device fleet decomposition\n");
    devices.print();
  }

  if (collect) {
    telemetry::RunInfo info;
    info.tool = "sealdl-serve";
    info.workload = networks_csv;
    info.scheme = scheme_name;
    info.seed = serve_options.seed;
    info.provenance =
        telemetry::make_provenance(config, jobs, {scheme_name});
    if (!json_path.empty()) {
      telemetry::write_text_file(
          json_path, telemetry::run_report_json(info, config, *collect));
    }
    if (!trace_path.empty()) {
      telemetry::write_text_file(
          trace_path, telemetry::chrome_trace_json(info, config, *collect));
    }
    if (serve_options.profile) {
      // One NDJSON record per request, in lifecycle-completion order.
      std::string ndjson;
      for (const telemetry::RequestSpanRecord& span : collect->requests()) {
        util::JsonWriter json;
        json.begin_object();
        json.field("id", span.id);
        json.field("network", span.network);
        json.field("outcome", span.outcome);
        json.field("arrival", span.arrival);
        json.field("backlog_cycles", span.backlog_cycles);
        json.field("queue_cycles", span.queue_cycles);
        json.field("dispatch_cycles", span.dispatch_cycles);
        json.field("execute_cycles", span.execute_cycles);
        json.field("batch", span.batch);
        if (span.device >= 0) json.field("device", span.device);
        json.end_object();
        ndjson += json.str();
        ndjson += '\n';
      }
      telemetry::write_text_file(serve_options.profile_path, ndjson);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sealdl-serve: %s\n", e.what());
    return 1;
  }
}
