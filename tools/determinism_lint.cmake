# ctest gate: the byte-determinism contract of the telemetry / verify / serve
# stacks ("same flags => byte-identical output, for any --jobs") is easiest to
# break by accident — one wall-clock read or one iterated hash container. This
# lint greps those directories for the known nondeterminism sources and fails
# on any hit not carried by the audited allowlist
# (tools/determinism_lint_allowlist.txt).
#
# Invoked as:
#   cmake -DREPO_ROOT=<repo> -P determinism_lint.cmake
if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "usage: cmake -DREPO_ROOT=... -P determinism_lint.cmake")
endif()

set(lint_dirs src/telemetry src/verify src/serve)
# Each entry: a fixed substring whose presence needs justification.
set(banned_patterns
  std::random_device
  system_clock
  steady_clock
  high_resolution_clock
  gettimeofday
  std::time\(
  unordered_map
  unordered_set
)

# Load the allowlist: "path:pattern" entries, '#' comments.
set(allowlist "")
file(STRINGS ${REPO_ROOT}/tools/determinism_lint_allowlist.txt allow_lines)
foreach(line IN LISTS allow_lines)
  string(STRIP "${line}" line)
  if(line STREQUAL "" OR line MATCHES "^#")
    continue()
  endif()
  list(APPEND allowlist "${line}")
endforeach()

set(violations "")
set(scanned 0)
foreach(dir IN LISTS lint_dirs)
  file(GLOB_RECURSE sources
       ${REPO_ROOT}/${dir}/*.cpp ${REPO_ROOT}/${dir}/*.hpp)
  foreach(source IN LISTS sources)
    math(EXPR scanned "${scanned} + 1")
    file(READ ${source} content)
    file(RELATIVE_PATH rel ${REPO_ROOT} ${source})
    foreach(pattern IN LISTS banned_patterns)
      string(FIND "${content}" "${pattern}" pos)
      if(NOT pos EQUAL -1)
        list(FIND allowlist "${rel}:${pattern}" allowed)
        if(allowed EQUAL -1)
          list(APPEND violations "${rel}: ${pattern}")
        endif()
      endif()
    endforeach()
  endforeach()
endforeach()

if(scanned EQUAL 0)
  message(FATAL_ERROR "determinism lint scanned zero files — wrong REPO_ROOT?")
endif()

# Stale allowlist entries are themselves findings: an exception whose code is
# gone should be deleted, not silently kept as a blanket waiver.
foreach(entry IN LISTS allowlist)
  # Split at the FIRST colon: paths never contain one, patterns may ("std::").
  string(FIND "${entry}" ":" colon)
  string(SUBSTRING "${entry}" 0 ${colon} rel)
  math(EXPR after "${colon} + 1")
  string(SUBSTRING "${entry}" ${after} -1 pattern)
  if(NOT EXISTS ${REPO_ROOT}/${rel})
    list(APPEND violations "allowlist entry for missing file: ${entry}")
  else()
    file(READ ${REPO_ROOT}/${rel} content)
    string(FIND "${content}" "${pattern}" pos)
    if(pos EQUAL -1)
      list(APPEND violations "stale allowlist entry (pattern no longer present): ${entry}")
    endif()
  endif()
endforeach()

if(violations)
  string(REPLACE ";" "\n  " pretty "${violations}")
  message(FATAL_ERROR "determinism lint findings (add to "
          "tools/determinism_lint_allowlist.txt only with a justification):\n"
          "  ${pretty}")
endif()
message(STATUS "determinism lint OK: ${scanned} files clean in ${lint_dirs}")
