// sealdl-check: static invariant analyzer for SEAL encryption plans, memory
// layouts and generated warp traces. No cycle simulation is involved: the
// tool rebuilds the exact plan/layout pipeline the runner uses and proves the
// invariants over it (see docs/ANALYSIS.md for the rule catalog):
//
//   sealdl-check --workload vgg16 --ratio 0.5
//   sealdl-check --workload resnet18 --ratio 0.4 --json report.json
//   sealdl-check --workload vgg16 --secure-audit   # + functional taint audit
//   sealdl-check --workload resnet34 --inject all   # every rule must fire
//   sealdl-check --list-rules
//
// --secure-audit additionally runs the byte-provenance taint audit: a
// functional-memory transcript of every scheme's bus traffic, checked by the
// secure.* rules (docs/ANALYSIS.md, "Security analysis"). secure-* injections
// route through the audit automatically.
//
// Exit codes: 0 = clean (or every injected violation was caught),
// 1 = findings (or an injection went undetected), 2 = usage error.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "models/layer_spec.hpp"
#include "telemetry/report.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "verify/checker.hpp"
#include "verify/concurrency.hpp"
#include "verify/fleet_checkers.hpp"
#include "verify/profile_checkers.hpp"
#include "verify/scheme_checkers.hpp"
#include "verify/secure_checkers.hpp"
#include "verify/serve_checkers.hpp"

using namespace sealdl;

namespace {

std::vector<models::LayerSpec> parse_workload(const std::string& name,
                                              int input_hw) {
  if (name == "vgg16") return models::vgg16_specs(input_hw);
  if (name == "resnet18") return models::resnet18_specs(input_hw);
  if (name == "resnet34") return models::resnet34_specs(input_hw);
  throw std::invalid_argument("unknown --workload " + name +
                              " (vgg16|resnet18|resnet34)");
}

core::RowPolicy parse_policy(const std::string& name) {
  if (name == "smallest") return core::RowPolicy::kSmallestL1Plain;
  if (name == "random") return core::RowPolicy::kRandomPlain;
  if (name == "largest") return core::RowPolicy::kLargestL1Plain;
  throw std::invalid_argument("unknown --policy " + name +
                              " (smallest|random|largest)");
}

/// One catalog row: a rule id and the entry point that validates it.
struct CatalogRule {
  std::string id;
  std::string validator;
};

/// One catalog injection: the seeded violation's CLI name, the flag (and
/// binary) that runs it, and the rules it is guaranteed to fire.
struct CatalogInjection {
  std::string name;
  std::string flag;
  std::vector<std::string> fires;
};

/// The complete rule catalog, the single index docs/ANALYSIS.md and the
/// drift gate (tools/check_rule_catalog.cmake) are held against.
std::vector<CatalogRule> rule_catalog() {
  std::vector<CatalogRule> catalog;
  for (const auto& checker : verify::default_checkers()) {
    for (const std::string& rule : checker->rules()) {
      catalog.push_back({rule, "checker: " + std::string(checker->name())});
    }
  }
  // Rule families owned by other entry points, listed here so the catalog
  // printed by --list-rules stays the single complete index.
  for (const std::string& rule : verify::serve_option_rules()) {
    catalog.push_back({rule, "validated by sealdl-serve"});
  }
  for (const std::string& rule : verify::fleet_rules()) {
    catalog.push_back({rule, "validated by sealdl-serve"});
  }
  for (const std::string& rule : verify::profile_rules()) {
    catalog.push_back({rule, "validated by sealdl-sim/sealdl-serve"});
  }
  for (const std::string& rule : verify::secure_rules()) {
    catalog.push_back({rule,
                       "taint audit: --secure-audit here / in sealdl-sim "
                       "and sealdl-serve"});
  }
  for (const std::string& rule : verify::scheme_rules()) {
    catalog.push_back(
        {rule, "scheme conformance: sealdl-sim --scheme-audit"});
  }
  for (const std::string& rule : verify::lock_audit_rules()) {
    catalog.push_back({rule, "runtime lock auditor, SEALDL_LOCK_AUDIT"});
  }
  return catalog;
}

std::vector<CatalogInjection> injection_catalog() {
  std::vector<CatalogInjection> catalog;
  for (const verify::Injection injection : verify::all_injections()) {
    catalog.push_back({verify::injection_name(injection), "--inject",
                       verify::expected_rules(injection)});
  }
  for (const verify::SchemeInjection injection :
       verify::all_scheme_injections()) {
    catalog.push_back({verify::scheme_injection_name(injection),
                       "sealdl-sim --inject-scheme",
                       verify::scheme_injection_expected_rules(injection)});
  }
  return catalog;
}

void list_rules() {
  for (const CatalogRule& rule : rule_catalog()) {
    std::printf("%-16s (%s)\n", rule.id.c_str(), rule.validator.c_str());
  }
  std::printf("\ninjections (--inject <name>|all; scheme-* via "
              "sealdl-sim --inject-scheme):\n");
  for (const CatalogInjection& injection : injection_catalog()) {
    std::string rules;
    for (const std::string& rule : injection.fires) {
      if (!rules.empty()) rules += ", ";
      rules += rule;
    }
    std::printf("%-18s fires: %s\n", injection.name.c_str(), rules.c_str());
  }
}

/// Machine-readable catalog (--list-rules --json <path>): what the cmake
/// drift gate consumes instead of scraping the text listing.
void write_json_catalog(const std::string& path) {
  util::JsonWriter json;
  json.begin_object();
  json.field("tool", "sealdl-check");
  json.field("schema_version", 1);
  json.field("mode", "rule-catalog");
  json.key("rules");
  json.begin_array();
  for (const CatalogRule& rule : rule_catalog()) {
    json.begin_object();
    json.field("id", rule.id);
    json.field("validator", rule.validator);
    json.end_object();
  }
  json.end_array();
  json.key("injections");
  json.begin_array();
  for (const CatalogInjection& injection : injection_catalog()) {
    json.begin_object();
    json.field("name", injection.name);
    json.field("flag", injection.flag);
    json.key("fires");
    json.begin_array();
    for (const std::string& rule : injection.fires) json.value(rule);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  telemetry::write_text_file(path, json.str());
}

void write_json_report(const std::string& path, const std::string& workload,
                       const verify::BuildOptions& options,
                       const verify::Report& report, bool secure_audit) {
  util::JsonWriter json;
  json.begin_object();
  json.field("tool", "sealdl-check");
  json.field("schema_version", 1);
  json.field("workload", workload);
  json.field("selective", options.selective);
  json.field("encryption_ratio", options.plan.encryption_ratio);
  json.field("secure_audit", secure_audit);
  if (options.inject != verify::Injection::kNone) {
    json.field("inject", verify::injection_name(options.inject));
  }
  json.key("report");
  report.write_json(json);
  json.end_object();
  telemetry::write_text_file(path, json.str());
}

/// Per-injection outcome for the --inject all ledger (text + JSON).
struct InjectOutcome {
  std::string name;
  std::string status;  ///< "caught", "missed" or "skipped"
  std::string reason;  ///< only for "skipped"
  std::uint64_t errors = 0;
  std::uint64_t warnings = 0;
};

/// Runs one injection and verifies its expected rules all fired. Secure
/// injections additionally run the taint audit over the schemes they target,
/// since the secure.* rules consume a bus ledger, not the AnalysisInput alone.
bool run_injection(const std::vector<models::LayerSpec>& specs,
                   verify::BuildOptions options, verify::Injection injection,
                   const verify::TraceCheckOptions& trace_options,
                   InjectOutcome* outcome = nullptr) {
  options.inject = injection;
  const verify::AnalysisInput input = verify::build_input(specs, options);
  verify::Report report =
      verify::run_checkers(input, verify::default_checkers(trace_options));
  if (verify::is_secure_injection(injection)) {
    verify::SecureAuditOptions audit;
    audit.schemes = verify::audit_schemes_for(injection);
    verify::run_secure_audit(input, audit, report);
  }
  bool caught = true;
  for (const std::string& rule : verify::expected_rules(injection)) {
    if (!report.fired(rule)) {
      std::printf("MISSED  %-18s rule %s did not fire\n",
                  verify::injection_name(injection), rule.c_str());
      caught = false;
    }
  }
  if (caught) {
    std::printf("caught  %-18s (%llu errors, %llu warnings)\n",
                verify::injection_name(injection),
                static_cast<unsigned long long>(report.error_count()),
                static_cast<unsigned long long>(report.warning_count()));
  }
  if (outcome) {
    outcome->name = verify::injection_name(injection);
    outcome->status = caught ? "caught" : "missed";
    outcome->errors = report.error_count();
    outcome->warnings = report.warning_count();
  }
  return caught;
}

/// Machine-readable ledger for --inject all --json: one entry per injection
/// with its status, plus totals CI can assert (exercised + skipped == total).
void write_json_inject_report(const std::string& path,
                              const std::string& workload,
                              const std::vector<InjectOutcome>& outcomes) {
  std::uint64_t exercised = 0, skipped = 0, missed = 0;
  for (const InjectOutcome& o : outcomes) {
    if (o.status == "skipped") {
      ++skipped;
    } else {
      ++exercised;
      if (o.status == "missed") ++missed;
    }
  }
  util::JsonWriter json;
  json.begin_object();
  json.field("tool", "sealdl-check");
  json.field("schema_version", 1);
  json.field("mode", "inject-all");
  json.field("workload", workload);
  json.field("total", static_cast<std::uint64_t>(outcomes.size()));
  json.field("exercised", exercised);
  json.field("skipped", skipped);
  json.field("missed", missed);
  json.key("injections");
  json.begin_array();
  for (const InjectOutcome& o : outcomes) {
    json.begin_object();
    json.field("name", o.name);
    json.field("status", o.status);
    if (!o.reason.empty()) json.field("reason", o.reason);
    if (o.status != "skipped") {
      json.field("errors", o.errors);
      json.field("warnings", o.warnings);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  telemetry::write_text_file(path, json.str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::CliFlags flags(argc, argv);

    if (flags.get_bool("list-rules", false)) {
      const std::string catalog_json = flags.get("json", "");
      list_rules();
      if (!catalog_json.empty()) write_json_catalog(catalog_json);
      return 0;
    }

    const std::string workload = flags.get("workload", "vgg16");
    const int input_hw = static_cast<int>(flags.get_int("input", 224));
    verify::BuildOptions options;
    options.plan.encryption_ratio = flags.get_double("ratio", 0.5);
    options.plan.policy = parse_policy(flags.get("policy", "smallest"));
    options.plan.random_seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 11));
    options.selective = !flags.get_bool("baseline", false);

    verify::TraceCheckOptions trace_options;
    trace_options.num_warps = static_cast<int>(flags.get_int("warps", 12));
    trace_options.max_tiles =
        static_cast<std::uint64_t>(flags.get_int("tiles", 24));

    const std::string inject_name = flags.get("inject", "");
    const std::string json_path = flags.get("json", "");
    const bool strict = flags.get_bool("strict", false);
    const bool secure_audit = flags.get_bool("secure-audit", false);

    const auto unused = flags.unused();
    if (!unused.empty()) {
      std::fprintf(stderr, "unknown flag --%s\n", unused.front().c_str());
      return 2;
    }

    const std::vector<models::LayerSpec> specs =
        parse_workload(workload, input_hw);

    if (inject_name == "all") {
      const bool has_residuals =
          !verify::residual_edges_from_names(specs).empty();
      bool all_caught = true;
      int run = 0;
      int skipped = 0;
      std::vector<InjectOutcome> outcomes;
      for (const verify::Injection injection : verify::all_injections()) {
        InjectOutcome outcome;
        if (verify::requires_residual_topology(injection) && !has_residuals) {
          std::printf("skip    %-18s (no residual topology in %s)\n",
                      verify::injection_name(injection), workload.c_str());
          outcome.name = verify::injection_name(injection);
          outcome.status = "skipped";
          outcome.reason = "no residual topology in " + workload;
          outcomes.push_back(std::move(outcome));
          ++skipped;
          continue;
        }
        all_caught &=
            run_injection(specs, options, injection, trace_options, &outcome);
        outcomes.push_back(std::move(outcome));
        ++run;
      }
      const int total = static_cast<int>(verify::all_injections().size());
      if (run + skipped != total) {
        std::fprintf(stderr,
                     "sealdl-check: injection accounting broken: "
                     "%d exercised + %d skipped != %d total\n",
                     run, skipped, total);
        return 1;
      }
      std::printf("%s: %d injections exercised, %d skipped, %d total, %s\n",
                  workload.c_str(), run, skipped, total,
                  all_caught ? "all caught" : "SOME MISSED");
      if (!json_path.empty()) {
        write_json_inject_report(json_path, workload, outcomes);
      }
      return all_caught ? 0 : 1;
    }

    if (!inject_name.empty()) {
      const auto injection = verify::injection_from_name(inject_name);
      if (!injection) {
        std::fprintf(stderr, "unknown --inject %s\n", inject_name.c_str());
        return 2;
      }
      return run_injection(specs, options, *injection, trace_options) ? 0 : 1;
    }

    const verify::AnalysisInput input = verify::build_input(specs, options);
    verify::Report report =
        verify::run_checkers(input, verify::default_checkers(trace_options));
    if (secure_audit) {
      verify::run_secure_audit(input, verify::SecureAuditOptions{}, report);
      std::printf("secure audit: %d scheme configuration(s) transcribed\n",
                  input.plan ? 5 : 3);
    }
    std::printf("%s", report.to_text().c_str());
    if (!json_path.empty()) {
      write_json_report(json_path, workload, options, report, secure_audit);
    }
    const bool fail =
        report.error_count() > 0 || (strict && report.warning_count() > 0);
    return fail ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sealdl-check: %s\n", e.what());
    return 2;
  }
}
