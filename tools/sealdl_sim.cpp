// sealdl-sim: command-line front end to the accelerator simulator.
//
// Runs a single layer, a whole network, or a GEMM under any encryption
// configuration and prints the detailed statistics the bench binaries
// aggregate away. Intended for interactive exploration:
//
//   sealdl-sim --workload vgg16 --scheme seal-d --ratio 0.5 --jobs 4
//   sealdl-sim --workload conv --in-ch 256 --out-ch 256 --hw 56 --scheme counter
//   sealdl-sim --workload gemm --dim 1024 --scheme direct --engine-gbps 16
//   sealdl-sim --workload pool --in-ch 64 --hw 224 --scheme seal-c --split-counters
//
// Schemes come from the shared registry (sim/scheme_registry.hpp): the five
// paper schemes baseline | direct | counter | seal-d | seal-c plus the rival
// models seculator | guardnn. --scheme accepts any registered CLI name.
//
// Execution shape:
//   --jobs N         parallel per-layer simulation (0 = all hardware threads)
//   --chunk N        split layers into tile-chunk waves of <= N tiles, so deep
//                    networks scale past #layers workers (results fixed for a
//                    given --chunk, bitwise-invariant across --jobs)
//   --no-fast-path   naive per-cycle run loop (differential testing; identical
//                    results, much slower)
//
// Telemetry sinks (see docs/OBSERVABILITY.md):
//   --json report.json        machine-readable run report
//   --trace run.trace.json    Chrome trace-event file (Perfetto-compatible)
//   --sample-interval 10000   time-series sampling period in cycles
//   --max-samples 4096        cap the time series (2x decimation past cap)
//   --profile                 cycle-attribution profiler ("profile" report key)
//   --profile-folded out.txt  collapsed-stack flamegraph export
//
// Security audit (network workloads only):
//   --secure-audit            attach a byte-provenance taint probe to the bus,
//                             then prove the secure.* no-leakage invariants
//                             over the recorded ledger (docs/ANALYSIS.md);
//                             hand-encodes the five paper schemes only
//   --secure-audit-json p     write the ledger + findings (implies the audit);
//                             byte-identical across --jobs values
//   --scheme-audit            prove the run against the scheme's own declared
//                             SchemeContract via the generic scheme.* rule
//                             family — works for every registered scheme,
//                             including the rivals the secure.* family does
//                             not know about
//   --inject-scheme <n|all>   seed a scheme-contract violation and exit 0
//                             only if the matching scheme.* rule fires
//                             (self-test; implies --scheme-audit evidence)
//   --inject-scheme-json p    machine-readable ledger for --inject-scheme all
//
// Every profiled run is checked against the profile.* rule family; the
// hidden --inject-profile <conservation|total> flag seeds a violation and
// exits 0 only if the checker catches it (self-test, same discipline as
// sealdl-check --inject).
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "models/layer_spec.hpp"
#include "sim/gpu_simulator.hpp"
#include "sim/scheme_registry.hpp"
#include "telemetry/collect.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "verify/profile_checkers.hpp"
#include "verify/scheme_checkers.hpp"
#include "verify/secure_checkers.hpp"
#include "workload/gemm_trace.hpp"
#include "workload/network_runner.hpp"

using namespace sealdl;

namespace {

/// Resolves a CLI scheme name through the shared registry; the error message
/// enumerates the registry so it can never drift from the accepted set.
const sim::SchemeInfo& parse_scheme(const std::string& name) {
  if (const sim::SchemeInfo* entry = sim::find_scheme(name)) return *entry;
  std::string names;
  for (const sim::SchemeInfo& info : sim::scheme_registry()) {
    if (!names.empty()) names += '|';
    names += info.cli_name;
  }
  throw std::invalid_argument("unknown --scheme " + name + " (" + names + ")");
}

void print_stats(const sim::SimStats& stats, double scale,
                 const sim::GpuConfig& config) {
  util::Table table({"metric", "value"});
  table.add_row({"cycles (simulated slice)", std::to_string(stats.cycles)});
  table.add_row({"cycles (full workload)",
                 util::Table::fmt(static_cast<double>(stats.cycles) * scale, 0)});
  table.add_row({"latency @700MHz",
                 util::Table::fmt(static_cast<double>(stats.cycles) * scale / 700e3, 3) + " ms"});
  table.add_row({"IPC (thread)", util::Table::fmt(stats.ipc(), 1)});
  table.add_row({"IPC / peak", util::Table::pct(stats.ipc() / config.peak_ipc())});
  table.add_row({"L2 hit rate", util::Table::pct(stats.l2_hit_rate())});
  table.add_row({"DRAM read", util::Table::fmt(static_cast<double>(stats.dram_read_bytes) / 1e6, 2) + " MB"});
  table.add_row({"DRAM write", util::Table::fmt(static_cast<double>(stats.dram_write_bytes) / 1e6, 2) + " MB"});
  table.add_row({"DRAM utilization", util::Table::pct(sim::dram_utilization(stats, config))});
  if (config.scheme != sim::EncryptionScheme::kNone) {
    table.add_row({"encrypted bytes",
                   util::Table::fmt(static_cast<double>(stats.encrypted_bytes) / 1e6, 2) + " MB"});
    table.add_row({"bypassed bytes",
                   util::Table::fmt(static_cast<double>(stats.bypassed_bytes) / 1e6, 2) + " MB"});
    // Normalized over num_channels x engines_per_controller engines, so the
    // --engines ablations report honestly.
    table.add_row({"AES utilization", util::Table::pct(sim::aes_utilization(stats, config))});
  }
  if (config.scheme == sim::EncryptionScheme::kCounter) {
    table.add_row({"counter-cache hit rate", util::Table::pct(stats.counter_hit_rate())});
    table.add_row({"counter traffic",
                   util::Table::fmt(static_cast<double>(stats.counter_traffic_bytes) / 1e6, 2) + " MB"});
  }
  table.print();
}

int run(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const std::string workload = flags.get("workload", "vgg16");
  const sim::SchemeInfo& entry = parse_scheme(flags.get("scheme", "baseline"));
  const double ratio = flags.get_double("ratio", 0.5);
  const auto tiles = static_cast<std::uint64_t>(flags.get_int("tiles", 480));

  sim::GpuConfig config = sim::GpuConfig::gtx480();
  sim::apply_scheme(entry, config);
  config.counter_cache_kb = static_cast<int>(flags.get_int("counter-cache-kb", 96));
  config.split_counters = flags.get_bool("split-counters", false);
  config.engines_per_controller = static_cast<int>(flags.get_int("engines", 1));
  config.engine.throughput_gbps =
      flags.get_double("engine-gbps", config.engine.throughput_gbps);
  config.dram_total_gbps = flags.get_double("dram-gbps", config.dram_total_gbps);

  // Telemetry sinks are strictly opt-in; with none of --json/--trace/--profile
  // the simulation path is identical to a telemetry-free build.
  const std::string json_path = flags.get("json", "");
  const std::string trace_path = flags.get("trace", "");
  const auto sample_interval =
      static_cast<sim::Cycle>(flags.get_int("sample-interval", 10000));
  const auto max_samples =
      static_cast<std::size_t>(flags.get_int("max-samples", 0));
  const std::string folded_path = flags.get("profile-folded", "");
  const std::string inject_profile = flags.get("inject-profile", "");
  if (!inject_profile.empty() && inject_profile != "conservation" &&
      inject_profile != "total") {
    throw std::invalid_argument("unknown --inject-profile " + inject_profile +
                                " (conservation|total)");
  }
  const bool profile = flags.get_bool("profile", false) ||
                       !folded_path.empty() || !inject_profile.empty();
  const std::string secure_audit_json = flags.get("secure-audit-json", "");
  const bool secure_audit =
      flags.get_bool("secure-audit", false) || !secure_audit_json.empty();
  const std::string inject_scheme = flags.get("inject-scheme", "");
  const std::string inject_scheme_json = flags.get("inject-scheme-json", "");
  const bool scheme_audit = flags.get_bool("scheme-audit", false) ||
                            !inject_scheme.empty() ||
                            !inject_scheme_json.empty();
  if (!inject_scheme.empty() && inject_scheme != "all" &&
      !verify::scheme_injection_from_name(inject_scheme)) {
    std::string names = "all";
    for (const verify::SchemeInjection injection :
         verify::all_scheme_injections()) {
      names += '|';
      names += verify::scheme_injection_name(injection);
    }
    throw std::invalid_argument("unknown --inject-scheme " + inject_scheme +
                                " (" + names + ")");
  }
  if ((secure_audit || scheme_audit) && workload != "vgg16" &&
      workload != "resnet18" && workload != "resnet34") {
    throw std::invalid_argument(
        "--secure-audit/--scheme-audit need a network workload "
        "(vgg16|resnet18|resnet34): the taint probe classifies addresses "
        "against the network layout");
  }
  if (secure_audit && !entry.paper) {
    throw std::invalid_argument(
        std::string("--secure-audit hand-encodes the five paper schemes; "
                    "use --scheme-audit to check ") +
        entry.cli_name + " against its own contract");
  }
  std::unique_ptr<telemetry::RunTelemetry> collect;
  if (!json_path.empty() || !trace_path.empty() || profile) {
    telemetry::TelemetryOptions topts;
    topts.sample_interval = sample_interval;
    topts.max_samples = max_samples;
    topts.profile = profile;
    collect = std::make_unique<telemetry::RunTelemetry>(topts);
  }
  telemetry::RunInfo info;
  info.workload = workload;
  info.scheme = flags.get("scheme", "baseline");

  workload::RunOptions options;
  options.max_tiles_per_layer = tiles;
  options.selective = entry.selective();
  options.scope = entry.scope;
  options.plan.encryption_ratio = ratio;
  options.telemetry = collect.get();
  // Parallel per-layer simulation (0 = one worker per hardware thread).
  // Results are bitwise-identical to --jobs 1.
  options.jobs = static_cast<int>(flags.get_int("jobs", 1));
  // Sub-layer work units: --chunk N splits each layer's simulated slice into
  // tile-chunk waves of at most N tiles (0 = whole layer per unit). For a
  // fixed --chunk the results are bitwise-identical across --jobs.
  options.chunk_tiles = static_cast<std::uint64_t>(flags.get_int("chunk", 0));
  // Naive per-cycle run loop for differential testing of the event-skipping
  // fast path (identical results, much slower).
  options.fast_path = !flags.get_bool("no-fast-path", false);
  const bool single_layer =
      workload == "conv" || workload == "pool" || workload == "fc";
  if (single_layer) {
    // A lone layer is a network *body* layer, not a boundary layer; the
    // boundary policy would otherwise fully encrypt it regardless of ratio.
    options.plan.full_head_convs = 0;
    options.plan.full_tail_convs = 0;
    options.plan.full_tail_fcs = 0;
  }

  if (workload == "gemm") {
    workload::GemmSpec spec;
    spec.m = spec.n = spec.k = static_cast<int>(flags.get_int("dim", 1024));
    spec.a_base = 0x1000'0000;
    spec.b_base = 0x2000'0000;
    spec.c_base = 0x3000'0000;
    auto programs = workload::make_gemm_programs(
        spec, config.num_sms * config.warps_per_sm, tiles);
    sim::GpuSimulator simulator(config);
    simulator.set_fast_path(options.fast_path);
    simulator.load_work(std::move(programs));
    if (collect && collect->sampler()) simulator.set_sampler(collect->sampler());
    std::optional<telemetry::CycleProfiler> profiler;
    if (collect && collect->profiling()) {
      profiler.emplace();
      simulator.set_profiler(&*profiler);
    }
    simulator.run();
    std::printf("GEMM %dx%dx%d, scheme %s%s\n", spec.m, spec.n, spec.k,
                sim::scheme_name(config.scheme),
                config.selective ? " (SEAL selective)" : "");
    const double scale = static_cast<double>(spec.total_tiles()) /
                         static_cast<double>(std::min<std::uint64_t>(
                             tiles ? tiles : spec.total_tiles(), spec.total_tiles()));
    print_stats(simulator.stats(), scale, config);
    if (collect) {
      info.workload = "gemm-" + std::to_string(spec.m);
      collect->layers().push_back(telemetry::make_layer_record(
          "gemm", simulator.stats(), config, scale, 0));
      telemetry::collect_component_metrics(simulator, collect->registry());
      collect->advance_timeline(simulator.stats().cycles);
      if (profiler) {
        telemetry::LayerCycleProfile layer_profile = profiler->take_profile();
        layer_profile.layer = "gemm";
        collect->profile().layers.push_back(std::move(layer_profile));
      }
    }
  } else if (workload == "conv" || workload == "pool" || workload == "fc") {
    models::LayerSpec spec;
    spec.name = workload;
    if (workload == "fc") {
      spec.type = models::LayerSpec::Type::kFc;
      spec.in_features = static_cast<int>(flags.get_int("in-features", 4096));
      spec.out_features = static_cast<int>(flags.get_int("out-features", 4096));
    } else {
      spec.type = workload == "conv" ? models::LayerSpec::Type::kConv
                                     : models::LayerSpec::Type::kPool;
      spec.in_channels = static_cast<int>(flags.get_int("in-ch", 64));
      spec.out_channels = static_cast<int>(
          flags.get_int("out-ch", workload == "pool" ? spec.in_channels : 64));
      spec.in_h = spec.in_w = static_cast<int>(flags.get_int("hw", 56));
      if (workload == "pool") {
        spec.kernel = spec.stride = 2;
        spec.padding = 0;
        spec.out_channels = spec.in_channels;
      } else {
        spec.kernel = static_cast<int>(flags.get_int("kernel", 3));
        spec.stride = static_cast<int>(flags.get_int("stride", 1));
        spec.padding = spec.kernel / 2;
      }
    }
    const auto result = workload::run_single_layer(spec, config, options);
    std::printf("%s layer, scheme %s%s\n", workload.c_str(),
                sim::scheme_name(config.scheme),
                config.selective ? " (SEAL selective)" : "");
    print_stats(result.stats, result.scale, config);
  } else {
    const int input = static_cast<int>(flags.get_int("input", 224));
    const auto specs = workload == "vgg16"      ? models::vgg16_specs(input)
                       : workload == "resnet18" ? models::resnet18_specs(input)
                       : workload == "resnet34"
                           ? models::resnet34_specs(input)
                           : throw std::invalid_argument("unknown --workload " + workload);
    // The audit input reproduces the runner's layout bit-identically, which
    // is what lets the probe classify live bus addresses from outside.
    std::optional<verify::AnalysisInput> audit_input;
    std::optional<verify::TaintAuditor> auditor;
    if (secure_audit || scheme_audit) {
      verify::BuildOptions build;
      build.plan = options.plan;
      // Only plan-row schemes carry an encryption plan; weights-only and
      // full schemes audit against the plain region map.
      build.selective = entry.scope == sim::ProtectionScope::kPlanRows;
      audit_input.emplace(verify::build_input(specs, build));
      auditor.emplace(&*audit_input);
      options.probe_hook = &*auditor;
    }
    const auto result = workload::run_network(specs, config, options);
    std::printf("%s (%d x %d input), scheme %s%s\n", workload.c_str(), input, input,
                sim::scheme_name(config.scheme),
                config.selective ? " (SEAL selective)" : "");
    util::Table per_layer({"layer", "IPC", "full cycles"});
    for (const auto& layer : result.layers) {
      per_layer.add_row({layer.name, util::Table::fmt(layer.ipc(), 1),
                         util::Table::fmt(layer.full_cycles(), 0)});
    }
    per_layer.print();
    std::printf("\noverall IPC %.1f, latency %.2f ms @700MHz\n",
                result.overall_ipc(), result.total_cycles() / 700e3);
    if (auditor && secure_audit) {
      std::uint64_t counter_bytes = 0;
      for (const auto& layer : result.layers) {
        counter_bytes += layer.stats.counter_traffic_bytes;
      }
      const verify::Report audit_report =
          auditor->check(config.scheme, config.selective, counter_bytes);
      const verify::TaintLedger& ledger = auditor->ledger();
      std::printf("secure audit: %llu bus bytes over %zu lines, digest %016llx\n",
                  static_cast<unsigned long long>(ledger.total_bytes()),
                  ledger.lines().size(),
                  static_cast<unsigned long long>(ledger.digest()));
      if (!secure_audit_json.empty()) {
        util::JsonWriter json;
        json.begin_object();
        json.field("tool", "sealdl-sim");
        json.field("schema_version", 1);
        json.field("workload", workload);
        json.field("scheme", flags.get("scheme", "baseline"));
        json.field("selective", config.selective);
        json.field("encryption_ratio", ratio);
        json.key("ledger");
        ledger.write_json(json);
        json.key("report");
        audit_report.write_json(json);
        json.end_object();
        telemetry::write_text_file(secure_audit_json, json.str());
        std::printf("wrote secure-audit ledger to %s\n",
                    secure_audit_json.c_str());
      }
      if (audit_report.error_count() > 0) {
        std::fputs(audit_report.to_text().c_str(), stderr);
        std::fprintf(stderr,
                     "sealdl-sim: bus traffic violates the secure.* "
                     "invariants\n");
        return 1;
      }
    }
    if (scheme_audit) {
      sim::SimStats total;
      for (const auto& layer : result.layers) total.merge_from(layer.stats);
      verify::SchemeRunEvidence evidence;
      evidence.input = &*audit_input;
      evidence.ledger = &auditor->ledger();
      evidence.stats = total;
      evidence.config = config;
      const verify::Report scheme_report =
          verify::run_scheme_conformance(entry, evidence);
      if (scheme_report.error_count() > 0) {
        std::fputs(scheme_report.to_text().c_str(), stderr);
        std::fprintf(stderr, "sealdl-sim: run violates %s's scheme contract\n",
                     entry.display);
        return 1;
      }
      std::printf("scheme audit: %s conforms to its contract (scope %s)\n",
                  entry.display, sim::protection_scope_name(entry.scope));
      if (!inject_scheme.empty()) {
        // Self-test over the clean evidence: seed each requested violation
        // and demand the matching scheme.* rule fires, with the same
        // exercised + skipped == total accounting the --inject ledger uses.
        struct Outcome {
          std::string name;
          std::string status;  ///< "caught", "missed" or "skipped"
          std::string reason;
          std::uint64_t errors = 0;
          std::uint64_t warnings = 0;
        };
        std::vector<verify::SchemeInjection> selected;
        if (inject_scheme == "all") {
          selected = verify::all_scheme_injections();
        } else {
          selected = {*verify::scheme_injection_from_name(inject_scheme)};
        }
        std::vector<Outcome> outcomes;
        bool all_caught = true;
        for (const verify::SchemeInjection injection : selected) {
          Outcome outcome;
          outcome.name = verify::scheme_injection_name(injection);
          const bool needs_cipher =
              injection == verify::SchemeInjection::kWire ||
              injection == verify::SchemeInjection::kBoundary;
          if (needs_cipher && entry.scope == sim::ProtectionScope::kNone) {
            // Baseline's wire policy has no must-cipher side, so there is no
            // line whose corruption these rules could object to.
            outcome.status = "skipped";
            outcome.reason = "no must-cipher lines under scope none";
            std::printf("skip    %-18s (%s)\n", outcome.name.c_str(),
                        outcome.reason.c_str());
            outcomes.push_back(std::move(outcome));
            continue;
          }
          const verify::Report report =
              verify::run_scheme_injection(injection, entry, evidence);
          bool caught = true;
          for (const std::string& rule :
               verify::scheme_injection_expected_rules(injection)) {
            if (!report.fired(rule)) {
              std::printf("MISSED  %-18s rule %s did not fire\n",
                          outcome.name.c_str(), rule.c_str());
              caught = false;
            }
          }
          if (caught) {
            std::printf("caught  %-18s (%llu errors, %llu warnings)\n",
                        outcome.name.c_str(),
                        static_cast<unsigned long long>(report.error_count()),
                        static_cast<unsigned long long>(report.warning_count()));
          }
          outcome.status = caught ? "caught" : "missed";
          outcome.errors = report.error_count();
          outcome.warnings = report.warning_count();
          outcomes.push_back(std::move(outcome));
          all_caught &= caught;
        }
        std::uint64_t exercised = 0, skipped = 0, missed = 0;
        for (const Outcome& outcome : outcomes) {
          if (outcome.status == "skipped") {
            ++skipped;
          } else {
            ++exercised;
            if (outcome.status == "missed") ++missed;
          }
        }
        std::printf("%s/%s: %llu scheme injections exercised, %llu skipped, "
                    "%zu total, %s\n",
                    workload.c_str(), entry.cli_name,
                    static_cast<unsigned long long>(exercised),
                    static_cast<unsigned long long>(skipped), outcomes.size(),
                    all_caught ? "all caught" : "SOME MISSED");
        if (!inject_scheme_json.empty()) {
          util::JsonWriter json;
          json.begin_object();
          json.field("tool", "sealdl-sim");
          json.field("schema_version", 1);
          json.field("mode", "inject-scheme");
          json.field("workload", workload);
          json.field("scheme", entry.cli_name);
          json.field("total", static_cast<std::uint64_t>(outcomes.size()));
          json.field("exercised", exercised);
          json.field("skipped", skipped);
          json.field("missed", missed);
          json.key("injections");
          json.begin_array();
          for (const Outcome& outcome : outcomes) {
            json.begin_object();
            json.field("name", outcome.name);
            json.field("status", outcome.status);
            if (!outcome.reason.empty()) json.field("reason", outcome.reason);
            if (outcome.status != "skipped") {
              json.field("errors", outcome.errors);
              json.field("warnings", outcome.warnings);
            }
            json.end_object();
          }
          json.end_array();
          json.end_object();
          telemetry::write_text_file(inject_scheme_json, json.str());
        }
        return all_caught ? 0 : 1;
      }
    }
  }

  if (collect) {
    // run_specs() applies the scheme's selectivity before simulating; mirror
    // it so the exported config matches what actually ran.
    config.selective = entry.selective();
    info.provenance = telemetry::make_provenance(config, options.jobs,
                                                 {flags.get("scheme", "baseline")});
    info.provenance.fast_path = options.fast_path;
    if (collect->profiling()) {
      if (!inject_profile.empty()) {
        // Self-test: corrupt one bucket, then demand the matching rule fires.
        telemetry::CycleProfile& profile = collect->profile();
        if (profile.empty() || profile.layers.front().components.empty()) {
          std::fprintf(stderr, "--inject-profile: no profile data to corrupt\n");
          return 1;
        }
        telemetry::ComponentProfile& victim =
            profile.layers.front().components.front();
        victim.buckets[0] += 1;  // breaks conservation (sum != total)
        const char* rule = "profile.conservation";
        if (inject_profile == "total") {
          victim.total_cycles += 1;  // restores conservation, breaks total
          rule = "profile.total";
        }
        const verify::Report check = verify::run_profile_check(profile);
        if (check.fired(rule)) {
          std::printf("injected profile violation caught (%s)\n", rule);
          return 0;
        }
        std::fprintf(stderr, "MISSED injected profile violation (%s)\n", rule);
        return 1;
      }
      const verify::Report check =
          verify::run_profile_check(collect->profile());
      if (check.error_count() > 0) {
        std::fputs(check.to_text().c_str(), stderr);
        std::fprintf(stderr, "sealdl-sim: cycle profile violates the "
                             "profile.* invariants\n");
        return 1;
      }
    }
    if (!json_path.empty()) {
      telemetry::write_text_file(
          json_path, telemetry::run_report_json(info, config, *collect));
      std::printf("\nwrote JSON run report to %s\n", json_path.c_str());
    }
    if (!trace_path.empty()) {
      telemetry::write_text_file(
          trace_path, telemetry::chrome_trace_json(info, config, *collect));
      std::printf("wrote Perfetto trace to %s (open at https://ui.perfetto.dev)\n",
                  trace_path.c_str());
    }
    if (!folded_path.empty()) {
      telemetry::write_text_file(
          folded_path,
          telemetry::collapsed_stack(info.workload, collect->profile()));
      std::printf("wrote collapsed-stack profile to %s (feed to flamegraph.pl "
                  "or speedscope)\n",
                  folded_path.c_str());
    }
  }

  for (const auto& unused : flags.unused()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", unused.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
