# Throughput ratchet for the parallel-scaling bench artifact.
#
#   cmake -DFRESH=<freshly generated BENCH_parallel.json>
#         -DCOMMITTED=<committed BENCH_parallel.json>
#         -P check_parallel_ratchet.cmake
#
# Two gates, both against the committed snapshot:
#
#   1. Speedup floor. When the fresh artifact came from a host with >= 4
#      cores, its jobs=4 speedup must clear max(committed jobs=4 speedup,
#      1.8x). The committed value only raises the floor when it was itself
#      measured on a multi-core host — a single-core snapshot (speedup ~1x,
#      pure scheduling overhead) says nothing about scaling. On single-core
#      hosts the gate records the measurement and passes: a ratchet that can
#      only move on hardware able to show parallelism never ratchets down.
#
#   2. Checksum pin. When the two artifacts describe the identical workload
#      (tiles, input, ratio, chunk, fast_path), their cycle checksums must be
#      equal — wall-clock may drift with the host, simulated cycles may not.
#      Absent fields in older artifacts default to the pre-knob behaviour
#      (chunk=0, fast_path=true) so the gate tolerates snapshots that predate
#      the schema.

if(NOT DEFINED FRESH OR NOT DEFINED COMMITTED)
  message(FATAL_ERROR
      "usage: cmake -DFRESH=<fresh.json> -DCOMMITTED=<committed.json> "
      "-P check_parallel_ratchet.cmake")
endif()

function(read_json path out)
  if(NOT EXISTS "${path}")
    message(FATAL_ERROR "check_parallel_ratchet: missing artifact ${path}")
  endif()
  file(READ "${path}" text)
  set(${out} "${text}" PARENT_SCOPE)
endfunction()

# Pull a top-level "key":value scalar out of the compact JSON the bench
# writes (JsonWriter emits no whitespace). Falls back to ${default} when the
# key is absent so older committed artifacts keep parsing.
function(json_scalar json key default out)
  if("${json}" MATCHES "\"${key}\":([-+a-zA-Z0-9.]+)")
    set(${out} "${CMAKE_MATCH_1}" PARENT_SCOPE)
  else()
    set(${out} "${default}" PARENT_SCOPE)
  endif()
endfunction()

function(jobs4_speedup json label out)
  if(NOT "${json}" MATCHES
      "\"jobs\":4,\"wall_ms\":[-+0-9.eE]+,\"speedup_vs_serial\":([-+0-9.eE]+)")
    message(FATAL_ERROR
        "check_parallel_ratchet: ${label} artifact has no jobs=4 run")
  endif()
  set(${out} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

# CMake's if(LESS) is integer-only, so compare speedups in thousandths.
function(to_millis value out)
  if(NOT "${value}" MATCHES "^([0-9]+)\\.?([0-9]*)")
    message(FATAL_ERROR "check_parallel_ratchet: unparseable number '${value}'")
  endif()
  set(whole "${CMAKE_MATCH_1}")
  set(frac "${CMAKE_MATCH_2}000")
  string(SUBSTRING "${frac}" 0 3 frac)
  # Strip leading zeros (math() would read them as octal); "" means zero.
  string(REGEX REPLACE "^0+" "" frac "${frac}")
  if(frac STREQUAL "")
    set(frac 0)
  endif()
  math(EXPR millis "(${whole} * 1000) + ${frac}")
  set(${out} "${millis}" PARENT_SCOPE)
endfunction()

read_json("${FRESH}" fresh)
read_json("${COMMITTED}" committed)

json_scalar("${fresh}" host_cores 1 fresh_cores)
json_scalar("${committed}" host_cores 1 committed_cores)
jobs4_speedup("${fresh}" fresh fresh_speedup)
jobs4_speedup("${committed}" committed committed_speedup)

# ---- Gate 1: jobs=4 speedup floor -----------------------------------------
if(fresh_cores LESS 4)
  message(STATUS
      "check_parallel_ratchet: host exposed only ${fresh_cores} core(s); "
      "jobs=4 speedup ${fresh_speedup}x recorded, floor not enforced")
else()
  to_millis(1.8 floor)
  set(floor_origin "the 1.8x fast-path floor")
  if(NOT committed_cores LESS 4)
    to_millis(${committed_speedup} committed_millis)
    if(committed_millis GREATER floor)
      set(floor ${committed_millis})
      set(floor_origin "the committed artifact (${committed_speedup}x)")
    endif()
  endif()
  to_millis(${fresh_speedup} fresh_millis)
  if(fresh_millis LESS floor)
    message(FATAL_ERROR
        "check_parallel_ratchet: jobs=4 speedup ${fresh_speedup}x on a "
        "${fresh_cores}-core host regressed below ${floor_origin}")
  endif()
  message(STATUS
      "check_parallel_ratchet: jobs=4 speedup ${fresh_speedup}x clears "
      "${floor_origin}")
endif()

# ---- Gate 2: cycle checksum pin on identical workload params --------------
set(params_match TRUE)
foreach(key tiles input ratio chunk fast_path)
  if(key STREQUAL "chunk")
    set(default 0)
  elseif(key STREQUAL "fast_path")
    set(default true)
  else()
    set(default "")
  endif()
  json_scalar("${fresh}" ${key} "${default}" fresh_val)
  json_scalar("${committed}" ${key} "${default}" committed_val)
  if(NOT fresh_val STREQUAL committed_val)
    set(params_match FALSE)
    message(STATUS
        "check_parallel_ratchet: ${key} differs "
        "(fresh ${fresh_val} vs committed ${committed_val})")
  endif()
endforeach()

if(params_match)
  json_scalar("${fresh}" cycle_checksum "" fresh_sum)
  json_scalar("${committed}" cycle_checksum "" committed_sum)
  if(NOT fresh_sum STREQUAL committed_sum)
    message(FATAL_ERROR
        "check_parallel_ratchet: cycle checksum drifted on identical "
        "workload params (fresh ${fresh_sum} vs committed ${committed_sum}) "
        "— the simulator's cycle semantics changed; regenerate and review "
        "the committed artifact deliberately")
  endif()
  message(STATUS
      "check_parallel_ratchet: cycle checksum ${fresh_sum} matches the "
      "committed artifact")
else()
  message(STATUS
      "check_parallel_ratchet: workload params differ from the committed "
      "artifact; checksum pin skipped")
endif()
