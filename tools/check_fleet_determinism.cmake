# ctest gate: fleet serving must replay byte-identically across --jobs for
# every fleet size. For each --devices value in {1, 2, 4} the full JSON run
# report (registry counters, profile layers, request spans) is generated
# under --jobs 1 and --jobs 4 and byte-compared — profiling parallelism must
# never leak into the multi-device event loop. Invoked as:
#   cmake -DSERVE_BIN=<path> -DOUT_DIR=<dir> -P check_fleet_determinism.cmake
if(NOT DEFINED SERVE_BIN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DSERVE_BIN=... -DOUT_DIR=... -P check_fleet_determinism.cmake")
endif()

set(common_flags
  --networks vgg16,resnet18 --scheme seal-d --rate 80 --duration 0.05
  --queue-depth 8 --batch 4 --policy shed-oldest --tiles 48 --seed 7
  --router least-loaded --microbatch 2)

foreach(devices 1 2 4)
  # 4 devices also exercise sharding: two 2-stage pipelines.
  if(devices EQUAL 4)
    set(shard_flags --shard-stages 2)
  else()
    set(shard_flags)
  endif()
  foreach(jobs 1 4)
    execute_process(
      COMMAND ${SERVE_BIN} ${common_flags} ${shard_flags}
              --devices ${devices} --jobs ${jobs}
              --json ${OUT_DIR}/fleet_d${devices}_j${jobs}.json
      RESULT_VARIABLE rc
      OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "sealdl-serve --devices ${devices} --jobs ${jobs} failed (rc=${rc})")
    endif()
  endforeach()

  # The provenance block legitimately differs across job counts (it records
  # --jobs); strip it before comparing. It is a flat object (no nested
  # braces), emitted on the single-line report, so a non-greedy brace match
  # is exact.
  file(READ ${OUT_DIR}/fleet_d${devices}_j1.json report_j1)
  file(READ ${OUT_DIR}/fleet_d${devices}_j4.json report_j4)
  string(REGEX REPLACE "\"provenance\":{[^}]*}," "" report_j1 "${report_j1}")
  string(REGEX REPLACE "\"provenance\":{[^}]*}," "" report_j4 "${report_j4}")
  if(NOT report_j1 STREQUAL report_j4)
    message(FATAL_ERROR
      "fleet reports differ between --jobs 1 and --jobs 4 at --devices ${devices}")
  endif()
  message(STATUS "fleet determinism OK at --devices ${devices}: --jobs 1 == --jobs 4")
endforeach()
