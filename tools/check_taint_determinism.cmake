# ctest gate: the taint ledger recorded during a live timing run must be
# byte-identical for --jobs 1 and --jobs 4 — the probe-per-layer +
# spec-ordered-merge discipline (workload::BusProbeHook) makes the whole
# --secure-audit-json document (per-line ledger, class totals, digest,
# findings) independent of worker scheduling.
# Invoked as:
#   cmake -DSIM_BIN=<path> -DOUT_DIR=<dir> -P check_taint_determinism.cmake
if(NOT DEFINED SIM_BIN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DSIM_BIN=... -DOUT_DIR=... -P check_taint_determinism.cmake")
endif()

set(common_flags
  --workload resnet18 --input 96 --scheme seal-c --ratio 0.5 --tiles 48)

foreach(jobs 1 4)
  execute_process(
    COMMAND ${SIM_BIN} ${common_flags} --jobs ${jobs}
            --secure-audit-json ${OUT_DIR}/taint_j${jobs}.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sealdl-sim --secure-audit --jobs ${jobs} failed (rc=${rc})")
  endif()
endforeach()

file(READ ${OUT_DIR}/taint_j1.json ledger_j1)
file(READ ${OUT_DIR}/taint_j4.json ledger_j4)
if(NOT ledger_j1 STREQUAL ledger_j4)
  message(FATAL_ERROR "taint ledgers differ between --jobs 1 and --jobs 4")
endif()
if(NOT ledger_j1 MATCHES "\"digest\"")
  message(FATAL_ERROR "taint ledger JSON carries no digest — export broke?")
endif()
message(STATUS "taint ledger determinism OK: --jobs 1 == --jobs 4")
