# ctest gate: the five paper schemes must stay byte-identical to the goldens
# captured before the pluggable SchemeModel refactor. Each scheme re-runs the
# exact golden command and compares both artifacts — the profiled JSON run
# report (cycle counts, per-layer stats, cycle profile) and the taint-audit
# ledger (byte provenance + digest) — against tests/golden/.
#
# The report's provenance block records the generating host's core count,
# which is the one legitimately host-dependent byte; it is neutralized on
# both sides before the comparison so the gate pins simulation results, not
# the machine the golden was captured on.
#
# Invoked as:
#   cmake -DSIM_BIN=<path> -DGOLDEN_DIR=<tests/golden> -DOUT_DIR=<dir>
#         -P check_scheme_golden.cmake
if(NOT DEFINED SIM_BIN OR NOT DEFINED GOLDEN_DIR OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DSIM_BIN=... -DGOLDEN_DIR=... -DOUT_DIR=... -P check_scheme_golden.cmake")
endif()

function(neutralize_host_cores path out_var)
  file(READ ${path} contents)
  string(REGEX REPLACE "\"host_cores\":[0-9]+" "\"host_cores\":0" contents "${contents}")
  set(${out_var} "${contents}" PARENT_SCOPE)
endfunction()

foreach(scheme baseline direct counter seal-d seal-c)
  execute_process(
    COMMAND ${SIM_BIN} --workload resnet18 --input 96 --scheme ${scheme}
            --ratio 0.5 --tiles 48 --profile
            --json ${OUT_DIR}/golden_${scheme}.report.json
            --secure-audit-json ${OUT_DIR}/golden_${scheme}.ledger.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sealdl-sim --scheme ${scheme} failed (rc=${rc})")
  endif()

  neutralize_host_cores(${GOLDEN_DIR}/scheme_${scheme}.report.json want_report)
  neutralize_host_cores(${OUT_DIR}/golden_${scheme}.report.json got_report)
  if(NOT want_report STREQUAL got_report)
    message(FATAL_ERROR "scheme ${scheme}: run report drifted from ${GOLDEN_DIR}/scheme_${scheme}.report.json — the SchemeModel refactor changed simulation results")
  endif()

  # Ledgers carry no provenance; they must match byte for byte.
  file(READ ${GOLDEN_DIR}/scheme_${scheme}.ledger.json want_ledger)
  file(READ ${OUT_DIR}/golden_${scheme}.ledger.json got_ledger)
  if(NOT want_ledger STREQUAL got_ledger)
    message(FATAL_ERROR "scheme ${scheme}: taint ledger drifted from ${GOLDEN_DIR}/scheme_${scheme}.ledger.json")
  endif()
  message(STATUS "golden ${scheme} OK (report + ledger byte-identical)")
endforeach()

message(STATUS "scheme goldens OK: 5 schemes byte-identical pre/post refactor")
