// Deploying a model with the emalloc() programming primitive (paper §III-A):
// what an application developer writes, and what it costs.
//
// Walks one real deployment flow: derive the SE plan from the trained
// weights, allocate weight rows with malloc()/emalloc() accordingly, verify
// that encrypted inference is bit-transparent to the computation, and report
// the per-network latency of the protection on the simulated accelerator.
//
//   ./secure_inference [--model resnet18] [--ratio 0.5]
#include <cstdio>

#include "core/encryption_plan.hpp"
#include "core/model_layout.hpp"
#include "core/secure_heap.hpp"
#include "models/build.hpp"
#include "models/layer_spec.hpp"
#include "nn/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "sim/functional_memory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/network_runner.hpp"

using namespace sealdl;

int main(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const std::string model_name = flags.get("model", "resnet18");
  const double ratio = flags.get_double("ratio", 0.5);

  // A trained model to protect.
  models::BuildOptions build;
  build.input_hw = 16;
  build.width_div = 16;
  auto model = models::build_model(model_name, build);

  core::PlanOptions plan_options;
  plan_options.encryption_ratio = ratio;
  const auto plan = core::EncryptionPlan::from_model(*model, plan_options);

  // --- emalloc in action ------------------------------------------------------
  // The deployment tool walks the plan: encrypted rows go to emalloc(),
  // plaintext rows to plain malloc(). The secure map that the hardware
  // consults falls out of the allocation calls — no other bookkeeping.
  core::SecureHeap heap;
  const auto layers = core::collect_weight_layers(*model);
  std::uint64_t secure_rows = 0, total_rows = 0;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const auto& layer = layers[li];
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(layer.cols) *
        static_cast<std::uint64_t>(layer.weights_per_cell) * 4;
    for (int r = 0; r < layer.rows; ++r) {
      if (plan.layer(li).row_encrypted(r)) {
        heap.emalloc(row_bytes);
        ++secure_rows;
      } else {
        heap.malloc(row_bytes);
      }
      ++total_rows;
    }
  }
  std::printf("emalloc'd %llu of %llu kernel rows (%.0f%% of weight bytes secure)\n",
              static_cast<unsigned long long>(secure_rows),
              static_cast<unsigned long long>(total_rows),
              plan.overall_encrypted_weight_fraction() * 100.0);

  // --- transparency check -----------------------------------------------------
  // Round-trip the weights through encrypted functional memory and verify the
  // model computes identical logits: encryption is invisible to correctness.
  crypto::Key128 key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i + 100);
  sim::FunctionalMemory memory(sim::EncryptionScheme::kDirect, true,
                               &heap.secure_map(), key);
  const auto bytes = nn::serialize_params(*model);
  memory.write(0x1000'0000, bytes);
  std::vector<std::uint8_t> readback(bytes.size());
  memory.read(0x1000'0000, readback);

  nn::DatasetConfig data_config;
  data_config.height = data_config.width = 16;
  data_config.samples = 64;
  nn::SyntheticDataset dataset(data_config);
  nn::Tensor probe = dataset.batch({0, 1, 2, 3});
  nn::Tensor before = model->forward(probe, false);
  nn::deserialize_params(*model, readback);
  nn::Tensor after = model->forward(probe, false);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < before.numel(); ++i) {
    max_diff = std::max(max_diff, static_cast<double>(std::abs(before[i] - after[i])));
  }
  std::printf("encrypted round-trip logit difference: %.1e (bit-transparent)\n\n",
              max_diff);

  // --- cost on the accelerator ------------------------------------------------
  const auto specs = model_name == "vgg16"      ? models::vgg16_specs(224)
                     : model_name == "resnet18" ? models::resnet18_specs(224)
                                                : models::resnet34_specs(224);
  util::Table table({"scheme", "latency (ms @700MHz)", "vs baseline"});
  double baseline_ms = 0.0;
  struct Run {
    const char* name;
    sim::EncryptionScheme scheme;
    bool selective;
  };
  for (const Run& run : {Run{"Baseline (insecure)", sim::EncryptionScheme::kNone, false},
                         Run{"Direct full encryption", sim::EncryptionScheme::kDirect, false},
                         Run{"SEAL-D", sim::EncryptionScheme::kDirect, true}}) {
    sim::GpuConfig config = sim::GpuConfig::gtx480();
    config.scheme = run.scheme;
    workload::RunOptions options;
    options.max_tiles_per_layer = 240;
    options.selective = run.selective;
    options.plan = plan_options;
    const auto result = workload::run_network(specs, config, options);
    const double ms = result.total_cycles() / 700e6 * 1e3;
    if (baseline_ms == 0.0) baseline_ms = ms;
    table.add_row({run.name, util::Table::fmt(ms, 2),
                   util::Table::fmt(ms / baseline_ms, 2) + "x"});
  }
  std::printf("%s inference latency on the simulated GTX480:\n", model_name.c_str());
  table.print();

  for (const auto& unused : flags.unused()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", unused.c_str());
  }
  return 0;
}
