// Quickstart: the SEAL pipeline end to end, on a small CNN, in one page.
//
//  1. build and "train" a model,
//  2. rank kernel rows by l1 importance and derive an encryption plan,
//  3. lay the model out in accelerator memory with emalloc-marked ranges,
//  4. simulate an inference under Baseline / full encryption / SEAL,
//  5. print the resulting IPC and encrypted-traffic fractions.
//
//   ./quickstart
#include <cstdio>

#include "core/encryption_plan.hpp"
#include "core/model_layout.hpp"
#include "core/secure_heap.hpp"
#include "models/build.hpp"
#include "models/layer_spec.hpp"
#include "nn/dataset.hpp"
#include "nn/trainer.hpp"
#include "util/table.hpp"
#include "workload/network_runner.hpp"

using namespace sealdl;

int main() {
  // --- 1. a small trained VGG-16 (width-scaled) ------------------------------
  models::BuildOptions build;
  build.input_hw = 16;
  build.width_div = 16;
  auto model = models::build_vgg16(build);

  nn::DatasetConfig data_config;
  data_config.height = data_config.width = 16;
  data_config.samples = 600;
  data_config.noise_stddev = 0.1f;  // easy split: this is a demo, not an eval
  nn::SyntheticDataset dataset(data_config);
  nn::TrainOptions train;
  train.epochs = 3;
  train.sgd.lr = 0.02f;
  nn::train(*model, dataset, dataset.victim_train_indices(100), {}, train);
  std::printf("trained model, test accuracy %.1f%%\n\n",
              nn::evaluate(*model, dataset, dataset.test_indices(100)) * 100.0);

  // --- 2. the criticality-aware Smart Encryption plan ------------------------
  core::PlanOptions plan_options;  // paper defaults: 50% ratio, boundary policy
  const auto plan = core::EncryptionPlan::from_model(*model, plan_options);
  std::printf("SE plan: %zu weight layers, %.0f%% of weight parameters encrypted\n",
              plan.layer_count(), plan.overall_encrypted_weight_fraction() * 100.0);
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("  layer %zu: %d/%d kernel rows encrypted%s\n", i,
                plan.layer(i).encrypted_count(), plan.layer(i).rows,
                plan.layer(i).fully_encrypted ? " (boundary policy)" : "");
  }

  // --- 3+4. simulate inference traffic under three schemes -------------------
  // Timing uses the full-size VGG-16 geometry; the plan ratio carries over.
  const auto specs = models::vgg16_specs(224);
  util::Table table({"scheme", "IPC", "normalized", "encrypted traffic"});
  double baseline = 0.0;
  struct Run {
    const char* name;
    sim::EncryptionScheme scheme;
    bool selective;
  };
  for (const Run& run : {Run{"Baseline", sim::EncryptionScheme::kNone, false},
                         Run{"Direct (full)", sim::EncryptionScheme::kDirect, false},
                         Run{"SEAL-D", sim::EncryptionScheme::kDirect, true}}) {
    sim::GpuConfig config = sim::GpuConfig::gtx480();
    config.scheme = run.scheme;
    workload::RunOptions options;
    options.max_tiles_per_layer = 240;  // sampled; keeps the demo snappy
    options.selective = run.selective;
    const auto result = workload::run_network(specs, config, options);
    if (baseline == 0.0) baseline = result.overall_ipc();
    std::uint64_t enc = 0, total = 0;
    for (const auto& layer : result.layers) {
      enc += layer.stats.encrypted_bytes;
      total += layer.stats.dram_bytes();
    }
    table.add_row({run.name, util::Table::fmt(result.overall_ipc(), 1),
                   util::Table::fmt(result.overall_ipc() / baseline, 2),
                   util::Table::pct(total ? static_cast<double>(enc) /
                                                static_cast<double>(total)
                                          : 0.0)});
  }
  std::printf("\nsimulated VGG-16 inference on the GTX480 model:\n");
  table.print();
  std::printf("\nSEAL keeps near-baseline IPC while the critical half of the "
              "model is ciphertext on the bus.\n");
  return 0;
}
