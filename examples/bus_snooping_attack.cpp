// The threat, demonstrated: a bus snooper watches every DRAM transaction
// while a model's weights stream through the memory bus, then tries to
// reassemble the model.
//
// Three accelerators are attacked: unprotected, SEAL-protected (50% ratio),
// and fully encrypted. The snooper works exactly like the paper's adversary:
// it records the wire bytes of every transfer (functional memory carries real
// AES ciphertext) and reads out the address ranges where the weights live.
//
//   ./bus_snooping_attack
#include <cmath>
#include <cstdio>
#include <cstring>

#include "attack/bus_snooper.hpp"
#include "core/encryption_plan.hpp"
#include "core/model_layout.hpp"
#include "core/secure_heap.hpp"
#include "models/build.hpp"
#include "nn/serialize.hpp"
#include "sim/functional_memory.hpp"
#include "util/table.hpp"

using namespace sealdl;

namespace {

/// Writes the model's kernel rows into simulated DRAM with the layout the
/// accelerator uses (input-channel-major rows), then streams them back —
/// the inference-time traffic the snooper taps.
void place_and_stream(nn::Layer& model, const core::EncryptionPlan* plan,
                      sim::FunctionalMemory& memory, core::SecureHeap& heap) {
  const auto layers = core::collect_weight_layers(model);
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const auto& layer = layers[li];
    const std::size_t row_floats =
        static_cast<std::size_t>(layer.cols) * static_cast<std::size_t>(layer.weights_per_cell);
    for (int r = 0; r < layer.rows; ++r) {
      // Gather kernel row r (input-channel-major layout).
      std::vector<float> row(row_floats);
      if (layer.is_conv) {
        const int cell = layer.weights_per_cell;
        for (int oc = 0; oc < layer.cols; ++oc) {
          const std::size_t src =
              (static_cast<std::size_t>(oc) * static_cast<std::size_t>(layer.rows) +
               static_cast<std::size_t>(r)) * static_cast<std::size_t>(cell);
          std::memcpy(row.data() + static_cast<std::size_t>(oc) * static_cast<std::size_t>(cell),
                      &layer.weight->value[src], static_cast<std::size_t>(cell) * sizeof(float));
        }
      } else {
        for (int o = 0; o < layer.cols; ++o) {
          row[static_cast<std::size_t>(o)] =
              layer.weight->value[static_cast<std::size_t>(o) * static_cast<std::size_t>(layer.rows) +
                                  static_cast<std::size_t>(r)];
        }
      }
      const bool secure =
          plan && plan->layer(li).row_encrypted(r);
      const auto alloc =
          secure ? heap.emalloc(row.size() * sizeof(float))
                 : heap.malloc(row.size() * sizeof(float));
      memory.write(alloc.addr, {reinterpret_cast<const std::uint8_t*>(row.data()),
                                row.size() * sizeof(float)});
      // Inference streams the weights back through the bus.
      std::vector<std::uint8_t> readback(row.size() * sizeof(float));
      memory.read(alloc.addr, readback);
    }
  }
}

/// Fraction of weight floats the snooper recovered exactly.
double recovered_fraction(nn::Layer& model, const attack::BusSnooper& snooper,
                          core::SecureHeap& heap_used,
                          const core::EncryptionPlan* plan) {
  // Re-walk the same deterministic allocation order to know where rows live.
  core::SecureHeap heap;  // fresh heap replays identical addresses
  const auto layers = core::collect_weight_layers(model);
  std::size_t recovered = 0, total = 0;
  (void)heap_used;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const auto& layer = layers[li];
    const std::size_t row_floats =
        static_cast<std::size_t>(layer.cols) * static_cast<std::size_t>(layer.weights_per_cell);
    for (int r = 0; r < layer.rows; ++r) {
      std::vector<float> expected(row_floats);
      if (layer.is_conv) {
        const int cell = layer.weights_per_cell;
        for (int oc = 0; oc < layer.cols; ++oc) {
          const std::size_t src =
              (static_cast<std::size_t>(oc) * static_cast<std::size_t>(layer.rows) +
               static_cast<std::size_t>(r)) * static_cast<std::size_t>(cell);
          std::memcpy(expected.data() + static_cast<std::size_t>(oc) * static_cast<std::size_t>(cell),
                      &layer.weight->value[src], static_cast<std::size_t>(cell) * sizeof(float));
        }
      } else {
        for (int o = 0; o < layer.cols; ++o) {
          expected[static_cast<std::size_t>(o)] =
              layer.weight->value[static_cast<std::size_t>(o) * static_cast<std::size_t>(layer.rows) +
                                  static_cast<std::size_t>(r)];
        }
      }
      const bool secure = plan && plan->layer(li).row_encrypted(r);
      const auto alloc = secure ? heap.emalloc(expected.size() * sizeof(float))
                                : heap.malloc(expected.size() * sizeof(float));
      const auto seen = snooper.extract(alloc.addr, expected.size() * sizeof(float));
      const auto* seen_floats = reinterpret_cast<const float*>(seen.data());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ++total;
        if (seen_floats[i] == expected[i]) ++recovered;
      }
    }
  }
  return static_cast<double>(recovered) / static_cast<double>(total);
}

}  // namespace

int main() {
  std::printf("Building a victim model whose weights are the secret...\n");
  models::BuildOptions build;
  build.input_hw = 16;
  build.width_div = 16;
  auto model = models::build_vgg16(build);

  crypto::Key128 key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(31 * i + 7);

  struct Scenario {
    const char* name;
    sim::EncryptionScheme scheme;
    bool selective;
    bool with_plan;
  };
  const Scenario scenarios[] = {
      {"no protection", sim::EncryptionScheme::kNone, false, false},
      {"SEAL (50% ratio)", sim::EncryptionScheme::kDirect, true, true},
      {"full encryption", sim::EncryptionScheme::kDirect, false, false},
  };

  core::PlanOptions plan_options;
  const auto plan = core::EncryptionPlan::from_model(*model, plan_options);

  util::Table table({"accelerator", "bus transfers", "ciphertext transfers",
                     "weights recovered"});
  for (const Scenario& s : scenarios) {
    core::SecureHeap heap;
    sim::FunctionalMemory memory(s.scheme, s.selective,
                                 s.selective ? &heap.secure_map() : nullptr, key);
    attack::BusSnooper snooper;
    memory.set_probe(&snooper);
    place_and_stream(*model, s.with_plan ? &plan : nullptr, memory, heap);
    const double recovered =
        recovered_fraction(*model, snooper, heap, s.with_plan ? &plan : nullptr);
    table.add_row({s.name, std::to_string(snooper.transfers()),
                   std::to_string(snooper.encrypted_transfers()),
                   util::Table::pct(recovered)});
  }
  table.print();

  std::printf(
      "\nWithout protection the snooper reconstructs the entire model.\n"
      "Under SEAL the unimportant rows remain readable by design, while every\n"
      "critical row (largest l1-norm) crosses the bus only as AES ciphertext.\n");
  return 0;
}
