// Choosing the encryption ratio: reproduces the paper's §III-B decision
// procedure on your own model — sweep the ratio, measure both axes
// (substitute-model accuracy as the security cost, simulated IPC as the
// performance cost), and report the knee.
//
//   ./ratio_advisor [--model vgg16] [--quick]
#include <cstdio>

#include "attack/pipeline.hpp"
#include "models/layer_spec.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/network_runner.hpp"

using namespace sealdl;

int main(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const std::string model_name = flags.get("model", "vgg16");
  const bool quick = flags.get_bool("quick", false);

  // --- security axis: substitute accuracy per ratio ---------------------------
  attack::PipelineOptions po;
  po.model = model_name;
  po.build.input_hw = 16;
  po.build.width_div = 16;
  po.dataset.height = po.dataset.width = 16;
  po.dataset.samples = quick ? 1200 : 2400;
  po.dataset.noise_stddev = 0.35f;
  po.test_holdout = 300;
  po.victim_train.epochs = quick ? 3 : 5;
  po.victim_train.sgd.lr = 0.02f;
  po.victim_train.lr_decay = 0.7f;
  po.substitute_train.epochs = quick ? 4 : 8;
  po.substitute_train.sgd.lr = 0.015f;
  po.substitute_train.lr_decay = 0.8f;
  po.augment.rounds = 2;
  attack::SecurityPipeline pipe(po);
  std::printf("training victim %s...\n", model_name.c_str());
  pipe.prepare();
  const double victim_acc = pipe.victim_test_accuracy();
  auto black_box = pipe.black_box();
  const double bb_acc = pipe.test_accuracy(*black_box);
  std::printf("victim accuracy %.1f%%; black-box adversary reaches %.1f%%\n\n",
              victim_acc * 100, bb_acc * 100);

  // --- performance axis: simulated IPC per ratio -------------------------------
  const auto specs = model_name == "vgg16"      ? models::vgg16_specs(224)
                     : model_name == "resnet18" ? models::resnet18_specs(224)
                                                : models::resnet34_specs(224);
  workload::RunOptions run_options;
  run_options.max_tiles_per_layer = quick ? 120 : 240;
  const double baseline_ipc =
      workload::run_network(specs, sim::GpuConfig::gtx480(), run_options)
          .overall_ipc();

  util::Table table({"ratio", "substitute accuracy", "relative IPC", "verdict"});
  const std::vector<double> ratios =
      quick ? std::vector<double>{0.25, 0.5, 0.75}
            : std::vector<double>{0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9};
  double recommended = 1.0;
  for (double ratio : ratios) {
    auto substitute = pipe.seal_substitute(ratio);
    const double sub_acc = pipe.test_accuracy(*substitute);

    sim::GpuConfig config = sim::GpuConfig::gtx480();
    config.scheme = sim::EncryptionScheme::kDirect;
    config.selective = true;
    workload::RunOptions seal = run_options;
    seal.selective = true;
    seal.plan.encryption_ratio = ratio;
    const double ipc =
        workload::run_network(specs, config, seal).overall_ipc() / baseline_ipc;

    // Secure enough when the adversary gains nothing over black-box
    // (within a small tolerance for training noise).
    const bool secure = sub_acc <= bb_acc + 0.05;
    if (secure && ratio < recommended) recommended = ratio;
    table.add_row({util::Table::pct(ratio, 0), util::Table::pct(sub_acc),
                   util::Table::fmt(ipc, 2), secure ? "secure" : "leaks IP"});
    std::printf("ratio %.0f%% done\n", ratio * 100);
  }
  std::printf("\n");
  table.print();
  std::printf("\nsmallest ratio with black-box-equivalent security: %.0f%% "
              "(paper picks 50%% from the same analysis)\n",
              recommended * 100);

  for (const auto& unused : flags.unused()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", unused.c_str());
  }
  return 0;
}
